"""Separation-flavoured experiments: the swap lemma and fooling harnesses.

Theorem T5 (nested TWA ⊊ regular) is an existence proof that finite means
cannot verify outright; what we *can* reproduce mechanically is its engine:

* **The swap lemma** (:func:`swap_preserves_acceptance`): if two disjoint
  subtrees (sitting in like flag-contexts) have identical behavior tables
  for an automaton, exchanging them does not change acceptance.  This is the
  finite-summarization property that both the regularity theorem (T4) and
  all TWA lower-bound arguments rest on, and it is property-tested here on
  random automata and trees.

* **Behavior counting** (:func:`distinct_behavior_count`): the number of
  distinct subtree behaviors an automaton realizes on a tree family is
  bounded by a function of its state count — while a family of regular
  languages (e.g. "leaf count ≡ 0 mod m" for growing m) forces unboundedly
  many distinguishable subtree classes.  The benchmark in
  ``benchmarks/bench_separation.py`` plots both curves.
"""

from __future__ import annotations

from ..trees.tree import Tree
from .behavior import subtree_behavior
from .twa import TWA

__all__ = [
    "swap_subtrees",
    "behavior_signature",
    "swap_preserves_acceptance",
    "distinct_behavior_count",
]


def swap_subtrees(tree: Tree, first: int, second: int) -> Tree:
    """A copy of ``tree`` with the (disjoint) subtrees at the two nodes
    exchanged in place."""
    if first > second:
        first, second = second, first
    if tree.is_in_subtree(second, first) or first == second:
        raise ValueError("subtrees must be disjoint")

    shape_first = _subtree_shape(tree, first)
    shape_second = _subtree_shape(tree, second)

    def rebuild(v: int):
        if v == first:
            return shape_second
        if v == second:
            return shape_first
        kids = tree.children_ids(v)
        if not kids:
            return tree.labels[v]
        return (tree.labels[v], [rebuild(c) for c in kids])

    return Tree.build(rebuild(0))


def _subtree_shape(tree: Tree, v: int):
    kids = tree.children_ids(v)
    if not kids:
        return tree.labels[v]
    return (tree.labels[v], [_subtree_shape(tree, c) for c in kids])


def _context_flags(tree: Tree, v: int) -> tuple[bool, bool, bool]:
    return (
        v == 0,
        v == 0 or tree.prev_sibling[v] < 0,
        v == 0 or tree.next_sibling[v] < 0,
    )


def behavior_signature(
    automaton: TWA, tree: Tree, node_id: int
) -> tuple[tuple[int, tuple], ...]:
    """The behavior table of the subtree at ``node_id`` *in its actual
    context* — the canonical interchangeability key."""
    is_root, is_first, is_last = _context_flags(tree, node_id)
    return subtree_behavior(
        automaton, tree, node_id, is_first=is_first, is_last=is_last, is_root=is_root
    )


def swap_preserves_acceptance(
    automaton: TWA, tree: Tree, first: int, second: int
) -> bool | None:
    """Check the swap lemma instance for two disjoint subtree positions.

    Returns None when the lemma's hypotheses fail (different contexts or
    different behavior tables); otherwise True iff acceptance is unchanged
    after the swap — which the lemma predicts always.
    """
    if first == second:
        return None
    lo, hi = min(first, second), max(first, second)
    if tree.is_in_subtree(hi, lo):
        return None
    if _context_flags(tree, first) != _context_flags(tree, second):
        return None
    sig_first = behavior_signature(automaton, tree, first)
    sig_second = behavior_signature(automaton, tree, second)
    if sig_first != sig_second:
        return None
    swapped = swap_subtrees(tree, first, second)
    return automaton.accepts(tree) == automaton.accepts(swapped)


def distinct_behavior_count(
    automaton: TWA,
    trees: list[Tree],
    is_first: bool = True,
    is_last: bool = True,
) -> int:
    """How many distinct behavior tables the automaton assigns to the given
    trees (each viewed as a subtree in the given flag context).

    An upper bound on how many classes of subtrees the automaton can tell
    apart — the quantity every TWA lower-bound argument plays against.
    """
    signatures = {
        subtree_behavior(automaton, t, 0, is_first=is_first, is_last=is_last)
        for t in trees
    }
    return len(signatures)
