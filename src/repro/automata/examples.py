"""A library of regular tree languages, as hedge automata.

These are the ground-truth languages of the T4/T5 experiments.  Modular
counting languages (``label_count_mod``, ``leaf_count_mod``) are the classic
stress tests for walking automata: a fixed TWA realizes only boundedly many
subtree behaviors, while these families force unboundedly many
distinguishable subtree classes as the modulus grows.
"""

from __future__ import annotations

from typing import Sequence

from .hedge import HedgeAutomaton
from .strings import Nfa

__all__ = [
    "exists_label",
    "root_label",
    "all_trees_automaton",
    "label_count_mod",
    "leaf_count_mod",
    "bounded_height",
    "chains_only",
]


def _sum_mod_nfa(modulus: int, residue: int) -> Nfa:
    """Words over symbols 0..m-1 whose sum ≡ residue (mod m); ε counts as 0."""
    transitions = {
        (s, sym): frozenset({(s + sym) % modulus})
        for s in range(modulus)
        for sym in range(modulus)
    }
    return Nfa(modulus, frozenset({0}), frozenset({residue}), transitions)


def all_trees_automaton(alphabet: Sequence[str]) -> HedgeAutomaton:
    """The language of *all* trees over ``alphabet`` (one universal state)."""
    anything = Nfa.all_words([0])
    rules = {(0, a): anything for a in alphabet}
    return HedgeAutomaton(1, tuple(alphabet), rules, frozenset({0}))


def exists_label(alphabet: Sequence[str], label: str) -> HedgeAutomaton:
    """Trees containing at least one node with the given label.

    State 1 = "seen", state 0 = "not seen".
    """
    any_word = Nfa.all_words([0, 1])
    one_seen = (
        Nfa.all_words([0, 1]).concat(Nfa.literal((1,))).concat(Nfa.all_words([0, 1]))
    )
    zeros = Nfa.all_words([0])
    rules: dict[tuple[int, str], Nfa] = {}
    for a in alphabet:
        if a == label:
            rules[(1, a)] = any_word
        else:
            rules[(1, a)] = one_seen
            rules[(0, a)] = zeros
    return HedgeAutomaton(2, tuple(alphabet), rules, frozenset({1}))


def root_label(alphabet: Sequence[str], label: str) -> HedgeAutomaton:
    """Trees whose root carries the given label."""
    any_word = Nfa.all_words([0, 1])
    rules: dict[tuple[int, str], Nfa] = {}
    for a in alphabet:
        rules[(0, a)] = any_word
        if a == label:
            rules[(1, a)] = any_word
    return HedgeAutomaton(2, tuple(alphabet), rules, frozenset({1}))


def label_count_mod(
    alphabet: Sequence[str], label: str, modulus: int, residue: int
) -> HedgeAutomaton:
    """Trees in which ``#nodes labelled `label` ≡ residue (mod modulus)``.

    State q = subtree count mod m; rules demand the children sum plus this
    node's own contribution hit q.
    """
    if not 0 <= residue < modulus:
        raise ValueError("residue must lie in [0, modulus)")
    rules: dict[tuple[int, str], Nfa] = {}
    for a in alphabet:
        contribution = 1 if a == label else 0
        for q in range(modulus):
            rules[(q, a)] = _sum_mod_nfa(modulus, (q - contribution) % modulus)
    return HedgeAutomaton(modulus, tuple(alphabet), rules, frozenset({residue}))


def leaf_count_mod(
    alphabet: Sequence[str], modulus: int, residue: int
) -> HedgeAutomaton:
    """Trees with ``#leaves ≡ residue (mod modulus)``.

    A leaf contributes 1; internal nodes sum their children.  The horizontal
    NFA distinguishes the empty word (this node is itself a leaf) from
    nonempty words: states are ``0`` (nothing read) and ``1 + s`` (sum s so
    far).
    """
    rules: dict[tuple[int, str], Nfa] = {}
    for a in alphabet:
        for q in range(modulus):
            transitions: dict[tuple[int, int], frozenset[int]] = {}
            for sym in range(modulus):
                transitions[(0, sym)] = frozenset({1 + sym % modulus})
                for s in range(modulus):
                    transitions[(1 + s, sym)] = frozenset({1 + (s + sym) % modulus})
            accepting = {1 + q}
            if q == 1 % modulus:
                accepting.add(0)  # the empty word: this node is a leaf
            rules[(q, a)] = Nfa(
                modulus + 1, frozenset({0}), frozenset(accepting), transitions
            )
    return HedgeAutomaton(modulus, tuple(alphabet), rules, frozenset({residue}))


def bounded_height(alphabet: Sequence[str], max_height: int) -> HedgeAutomaton:
    """Trees of height ≤ ``max_height`` (height 0 = a single leaf).

    State q = exact height of the subtree.
    """
    states = max_height + 1
    rules: dict[tuple[int, str], Nfa] = {}
    for a in alphabet:
        # Height 0: no children.
        rules[(0, a)] = Nfa.empty_word()
        for q in range(1, states):
            # Nonempty word over 0..q-1 containing at least one q-1.
            lower = Nfa.all_words(range(q))
            witness = Nfa.literal((q - 1,))
            rules[(q, a)] = lower.concat(witness).concat(lower)
    return HedgeAutomaton(states, tuple(alphabet), rules, frozenset(range(states)))


def chains_only(alphabet: Sequence[str]) -> HedgeAutomaton:
    """Trees that are unary chains (every node has at most one child)."""
    at_most_one = Nfa.empty_word().union(Nfa.literal((0,)))
    rules = {(0, a): at_most_one for a in alphabet}
    return HedgeAutomaton(1, tuple(alphabet), rules, frozenset({0}))
