"""Nested tree walking automata — the automaton model the paper introduces.

A nested TWA of depth 0 is a plain TWA.  A nested TWA of depth k+1 is a
walking automaton whose transitions may additionally be guarded by *subtree
tests*: a guard is a set of ``(i, sign)`` pairs, and the transition is
enabled at node ``v`` only if for each pair, sub-automaton ``i`` (of depth
≤ k) accepts the subtree rooted at ``v`` — viewed as a standalone tree, so
``v`` observes root flags — iff ``sign`` is True.

The paper proves (T3) that nested TWA capture exactly FO(MTC) = Regular
XPath(W) on finite ordered trees, and (T4/T5) that they recognize only
regular languages, strictly fewer than all of them.

Evaluation strategy: for each node, the accept bit of every sub-automaton on
that node's subtree is precomputed (recursively, memoized per node); guards
then reduce to lookups, and the main automaton runs by configuration-graph
reachability.  As for plain TWAs, the reachability itself comes in two
strategies: the default ``"bitset"`` bit-parallel frontier sweep (guards
become per-sub-automaton node masks, intersected into the transition's
source mask) and the ``"deque"`` config-at-a-time reference walk.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..runtime.budget import ExecutionBudget
from ..trees.index import tree_index
from ..trees.tree import Tree
from .twa import (
    Move,
    Observation,
    _check_strategy,
    apply_move,
    move_kernels,
    observation_at,
    observation_masks,
    sweep_configs,
)

__all__ = ["NestedTWA", "GuardedTransition"]

#: A guard: frozenset of (sub-automaton index, required sign).
Guard = frozenset


@dataclass(frozen=True)
class GuardedTransition:
    """One nondeterministic option: take ``move`` to ``target`` provided all
    subtree tests in ``guard`` agree with their required signs."""

    guard: Guard
    move: Move
    target: int


@dataclass(frozen=True)
class NestedTWA:
    """A nested tree walking automaton.

    ``transitions`` maps ``(state, observation)`` to a frozenset of
    :class:`GuardedTransition`; ``subautomata`` are the nested TWAs the
    guards refer to (their nesting depth is strictly smaller, enforced by
    construction since the structure is a finite tree of automata).
    """

    num_states: int
    initial: int
    accepting: frozenset[int]
    transitions: dict[tuple[int, Observation], frozenset[GuardedTransition]]
    subautomata: tuple["NestedTWA", ...] = ()

    @property
    def depth(self) -> int:
        """Nesting depth (0 for a plain walking automaton)."""
        if not self.subautomata:
            return 0
        return 1 + max(sub.depth for sub in self.subautomata)

    def options(self, state: int, obs: Observation) -> frozenset[GuardedTransition]:
        return self.transitions.get((state, obs), frozenset())

    # -- semantics ----------------------------------------------------------------

    def subtree_bits(
        self,
        tree: Tree,
        scope: int = 0,
        strategy: str = "bitset",
        budget: ExecutionBudget | None = None,
    ) -> list[tuple[bool, ...]]:
        """For every node of the scoped subtree: the tuple of accept bits of
        the sub-automata on that node's subtree.

        Indexed by absolute node id (entries outside the scope are unused).
        """
        bits: list[tuple[bool, ...]] = [()] * tree.size
        for v in tree.subtree_ids(scope):
            if budget is not None:
                budget.tick()
            bits[v] = tuple(
                sub.accepts(tree, scope=v, strategy=strategy, budget=budget)
                for sub in self.subautomata
            )
        return bits

    def subtree_masks(
        self,
        tree: Tree,
        scope: int = 0,
        strategy: str = "bitset",
        budget: ExecutionBudget | None = None,
    ) -> tuple[int, ...]:
        """Per sub-automaton: the bitmask of in-scope nodes whose subtree it
        accepts (the columnar form of :meth:`subtree_bits`)."""
        masks = [0] * len(self.subautomata)
        for v in tree.subtree_ids(scope):
            if budget is not None:
                budget.tick()
            for i, sub in enumerate(self.subautomata):
                if sub.accepts(tree, scope=v, strategy=strategy, budget=budget):
                    masks[i] |= 1 << v
        return tuple(masks)

    def accepts(
        self,
        tree: Tree,
        scope: int = 0,
        strategy: str = "bitset",
        budget: ExecutionBudget | None = None,
    ) -> bool:
        """Acceptance by configuration-graph reachability.

        Sub-automata run on subtrees of the *same* scoped view (a subtree of
        the scope is a subtree of the whole tree, so the nesting recursion
        is well-defined).
        """
        _check_strategy(strategy)
        if self.initial in self.accepting:
            return True
        if strategy == "deque":
            return self._accepts_deque(tree, scope, budget)
        index = tree_index(tree)
        sc = index.scope(scope)
        sub_masks = (
            self.subtree_masks(tree, scope, budget=budget)
            if self.subautomata
            else ()
        )
        mask_of = observation_masks(index, sc)
        kernels = move_kernels(index)
        guard_masks: dict[Guard, int] = {}
        merged: list[dict[tuple[Move, int], int]] = [
            {} for _ in range(self.num_states)
        ]
        for (state, obs), options in self.transitions.items():
            m = mask_of(obs)
            if not m:
                continue
            bucket = merged[state]
            for option in options:
                gm = guard_masks.get(option.guard)
                if gm is None:
                    gm = sc.mask
                    for i, sign in option.guard:
                        gm &= sub_masks[i] if sign else sc.mask & ~sub_masks[i]
                    guard_masks[option.guard] = gm
                source = m & gm
                if not source:
                    continue
                key = (option.move, option.target)
                bucket[key] = bucket.get(key, 0) | source
        program = [
            [
                (source_mask, kernels[move], next_state)
                for (move, next_state), source_mask in bucket.items()
            ]
            for bucket in merged
        ]
        return sweep_configs(
            self.num_states,
            self.initial,
            self.accepting,
            program,
            sc,
            accept_only=True,
            budget=budget,
        )

    def _accepts_deque(
        self,
        tree: Tree,
        scope: int = 0,
        budget: ExecutionBudget | None = None,
    ) -> bool:
        bits = (
            self.subtree_bits(tree, scope, strategy="deque", budget=budget)
            if self.subautomata
            else None
        )
        start = (self.initial, scope)
        seen = {start}
        queue = deque([start])
        while queue:
            if budget is not None:
                budget.tick()
            state, node = queue.popleft()
            obs = observation_at(tree, node, scope)
            for option in self.options(state, obs):
                if bits is not None and not _guard_holds(option.guard, bits[node]):
                    continue
                target = apply_move(tree, node, option.move, scope)
                if target is None:
                    continue
                if option.target in self.accepting:
                    return True
                config = (option.target, target)
                if config not in seen:
                    seen.add(config)
                    queue.append(config)
        return False

    # -- constructors ----------------------------------------------------------

    @staticmethod
    def from_twa(twa) -> "NestedTWA":
        """Lift a plain TWA to a depth-0 nested TWA."""
        transitions = {
            key: frozenset(
                GuardedTransition(frozenset(), move, target)
                for move, target in choices
            )
            for key, choices in twa.transitions.items()
        }
        return NestedTWA(
            twa.num_states, twa.initial, twa.accepting, transitions, ()
        )


def _guard_holds(guard: Guard, bits: tuple[bool, ...]) -> bool:
    return all(bits[index] == sign for index, sign in guard)
