"""Tree walking automata (TWA).

A TWA is a sequential device with finitely many states walking a tree one
edge at a time.  At each step it observes the current node's *local type* —
its label plus four boolean flags (root? leaf? first sibling? last sibling?)
— and nondeterministically picks a transition: a move (stay, up, down to the
first/last child, left/right to an adjacent sibling) and a next state.  The
run starts at the root in the initial state and **accepts by reaching an
accepting state** (anywhere in the tree).  Moves that fall off the tree kill
the run.

Membership is decided by reachability in the configuration graph
(state × node), which is the obvious O(|Q|·|T|) algorithm; the bottom-up
*behavior* algorithm in :mod:`repro.automata.behavior` is the structured
alternative that underlies the paper's regularity theorem (T4) and the two
are cross-validated against each other.

Two run strategies implement the reachability (``strategy=`` on
:meth:`TWA.accepts` / :meth:`TWA.reachable_configs`):

* ``"bitset"`` (default) — a bit-parallel frontier sweep: one bitmask of
  current nodes per state, advanced whole-set at a time by the shared
  :class:`repro.trees.index.TreeIndex` move kernels, with observation
  dispatch precompiled into per-transition node masks;
* ``"deque"`` — the config-at-a-time BFS walk, kept as the readable
  reference and cross-validation oracle.

All walking machinery takes an optional ``scope`` node: the automaton then
runs on the subtree rooted there as if it were a standalone tree (the scope
root observes root flags; moves leaving the subtree die).  This is exactly
what nested TWA subtree tests need (:mod:`repro.automata.nested`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from enum import Enum
from typing import Iterable

from .. import obs
from ..runtime import faults
from ..runtime.budget import ExecutionBudget
from ..trees.index import Scope, TreeIndex, tree_index
from ..trees.tree import Tree

__all__ = [
    "Move",
    "Observation",
    "RUN_STRATEGIES",
    "TWA",
    "TwaBuilder",
    "observation_at",
]

#: Names accepted by the ``strategy=`` argument of the run methods.
RUN_STRATEGIES = ("bitset", "deque")


class Move(Enum):
    STAY = "stay"
    UP = "up"
    DOWN_FIRST = "down_first"
    DOWN_LAST = "down_last"
    LEFT = "left"
    RIGHT = "right"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Move.{self.name}"


@dataclass(frozen=True)
class Observation:
    """The local type a walking automaton sees at a node."""

    label: str
    is_root: bool
    is_leaf: bool
    is_first: bool
    is_last: bool


def observation_at(tree: Tree, node_id: int, scope: int = 0) -> Observation:
    """The observation at ``node_id`` when walking the subtree of ``scope``."""
    at_scope_root = node_id == scope
    return Observation(
        label=tree.labels[node_id],
        is_root=at_scope_root,
        is_leaf=tree.first_child[node_id] < 0,
        is_first=at_scope_root or tree.prev_sibling[node_id] < 0,
        is_last=at_scope_root or tree.next_sibling[node_id] < 0,
    )


def apply_move(tree: Tree, node_id: int, move: Move, scope: int = 0) -> int | None:
    """The node reached by ``move``, or None if the move falls off the
    (scoped) tree."""
    if move is Move.STAY:
        return node_id
    if move is Move.UP:
        if node_id == scope:
            return None
        return tree.parent[node_id]
    if move is Move.DOWN_FIRST:
        target = tree.first_child[node_id]
        return target if target >= 0 else None
    if move is Move.DOWN_LAST:
        target = tree.last_child[node_id]
        return target if target >= 0 else None
    if move is Move.LEFT:
        if node_id == scope:
            return None
        target = tree.prev_sibling[node_id]
        return target if target >= 0 else None
    if move is Move.RIGHT:
        if node_id == scope:
            return None
        target = tree.next_sibling[node_id]
        return target if target >= 0 else None
    raise ValueError(f"unknown move {move!r}")  # pragma: no cover


def observation_masks(index: TreeIndex, sc: Scope):
    """A function ``obs -> bitmask`` of in-scope nodes with that local type.

    Non-root observations are four mask intersections (label, leaf, first,
    last); the scope root is matched separately against its one concrete
    observation, since its root/first/last flags are scope-dependent.
    """
    root_obs = observation_at(index.tree, sc.root, sc.root)
    nonroot = sc.mask & ~sc.root_bit
    full = index.full

    def mask_of(obs: Observation) -> int:
        if obs.is_root:
            return sc.root_bit if obs == root_obs else 0
        m = index.label_masks.get(obs.label, 0) & nonroot
        m &= index.leaf_mask if obs.is_leaf else full ^ index.leaf_mask
        m &= index.first_mask if obs.is_first else full ^ index.first_mask
        m &= index.last_mask if obs.is_last else full ^ index.last_mask
        return m

    return mask_of


def move_kernels(index: TreeIndex) -> dict[Move, object]:
    """The ``(mask, scope) -> mask`` kernel for each walking move."""
    return {
        Move.STAY: index.self_,
        Move.UP: index.parent,
        Move.DOWN_FIRST: index.down_first,
        Move.DOWN_LAST: index.down_last,
        Move.LEFT: index.left,
        Move.RIGHT: index.right,
    }


def sweep_configs(
    num_states: int,
    initial: int,
    accepting: frozenset[int],
    program: list[list[tuple[int, object, int]]],
    sc: Scope,
    accept_only: bool,
    budget: ExecutionBudget | None = None,
):
    """Bit-parallel configuration-graph reachability.

    ``program[state]`` lists ``(source_mask, move_kernel, next_state)``
    triples; the sweep keeps one frontier mask per state and advances every
    live configuration of a state in a single kernel application.  With
    ``accept_only`` it returns a bool as soon as an accepting state's mask
    becomes nonempty; otherwise it returns the per-state reached masks.
    """
    faults.check("automata.bitset")
    with obs.span("twa.frontier.sweep", budget=budget, strategy="bitset") as sweep:
        reached = [0] * num_states
        reached[initial] = sc.root_bit
        frontier = list(reached)
        rounds = 0
        while True:
            if budget is not None:
                # One checkpoint per BFS round of the configuration graph.
                budget.tick()
            rounds += 1
            sweep.set(rounds=rounds)
            new = [0] * num_states
            for state, live in enumerate(frontier):
                if not live:
                    continue
                for source_mask, kernel, next_state in program[state]:
                    src = live & source_mask
                    if src:
                        new[next_state] |= kernel(src, sc)
            if accept_only:
                for state in accepting:
                    if new[state]:
                        return True
            advanced = False
            for state in range(num_states):
                fresh = new[state] & ~reached[state]
                frontier[state] = fresh
                if fresh:
                    reached[state] |= fresh
                    advanced = True
            if not advanced:
                return False if accept_only else reached


def _check_strategy(strategy: str) -> None:
    if strategy not in RUN_STRATEGIES:
        raise ValueError(
            f"unknown run strategy {strategy!r}; expected one of {RUN_STRATEGIES}"
        )


@dataclass(frozen=True)
class TWA:
    """A (nondeterministic) tree walking automaton.

    ``transitions`` maps ``(state, observation)`` to a frozenset of
    ``(move, next_state)`` pairs.  Use :class:`TwaBuilder` to write automata
    with wildcard observations.
    """

    num_states: int
    initial: int
    accepting: frozenset[int]
    transitions: dict[tuple[int, Observation], frozenset[tuple[Move, int]]]

    def options(self, state: int, obs: Observation) -> frozenset[tuple[Move, int]]:
        return self.transitions.get((state, obs), frozenset())

    @property
    def is_deterministic(self) -> bool:
        return all(len(choices) <= 1 for choices in self.transitions.values())

    # -- membership via the configuration graph --------------------------------

    def _program(
        self, index: TreeIndex, sc: Scope
    ) -> list[list[tuple[int, object, int]]]:
        """Compile the transition table for one scope: per state, the merged
        ``(source_mask, move_kernel, next_state)`` triples."""
        mask_of = observation_masks(index, sc)
        kernels = move_kernels(index)
        merged: list[dict[tuple[Move, int], int]] = [
            {} for _ in range(self.num_states)
        ]
        for (state, obs), choices in self.transitions.items():
            m = mask_of(obs)
            if not m:
                continue
            bucket = merged[state]
            for choice in choices:
                bucket[choice] = bucket.get(choice, 0) | m
        return [
            [
                (source_mask, kernels[move], next_state)
                for (move, next_state), source_mask in bucket.items()
            ]
            for bucket in merged
        ]

    def accepts(
        self,
        tree: Tree,
        scope: int = 0,
        strategy: str = "bitset",
        budget: ExecutionBudget | None = None,
    ) -> bool:
        """Does some run (started at the scope root) reach an accepting state?"""
        _check_strategy(strategy)
        with obs.span("twa.accepts", budget=budget, strategy=strategy):
            if self.initial in self.accepting:
                return True
            if strategy == "deque":
                return self._accepts_deque(tree, scope, budget)
            index = tree_index(tree)
            sc = index.scope(scope)
            return sweep_configs(
                self.num_states,
                self.initial,
                self.accepting,
                self._program(index, sc),
                sc,
                accept_only=True,
                budget=budget,
            )

    def reachable_configs(
        self,
        tree: Tree,
        scope: int = 0,
        strategy: str = "bitset",
        budget: ExecutionBudget | None = None,
    ) -> set[tuple[int, int]]:
        """All reachable (state, node) configurations (for inspection)."""
        _check_strategy(strategy)
        with obs.span("twa.configs", budget=budget, strategy=strategy):
            return self._reachable(tree, scope, strategy, budget)

    def _reachable(
        self,
        tree: Tree,
        scope: int,
        strategy: str,
        budget: ExecutionBudget | None,
    ) -> set[tuple[int, int]]:
        if strategy == "deque":
            return self._reachable_deque(tree, scope, budget)
        index = tree_index(tree)
        sc = index.scope(scope)
        reached = sweep_configs(
            self.num_states,
            self.initial,
            self.accepting,
            self._program(index, sc),
            sc,
            accept_only=False,
            budget=budget,
        )
        configs: set[tuple[int, int]] = set()
        for state, mask in enumerate(reached):
            while mask:
                low = mask & -mask
                configs.add((state, low.bit_length() - 1))
                mask ^= low
        return configs

    def _accepts_deque(
        self,
        tree: Tree,
        scope: int = 0,
        budget: ExecutionBudget | None = None,
    ) -> bool:
        with obs.span("twa.frontier.sweep", budget=budget, strategy="deque"):
            start = (self.initial, scope)
            seen = {start}
            queue = deque([start])
            while queue:
                if budget is not None:
                    budget.tick()
                state, node = queue.popleft()
                observed = observation_at(tree, node, scope)
                for move, next_state in self.options(state, observed):
                    target = apply_move(tree, node, move, scope)
                    if target is None:
                        continue
                    if next_state in self.accepting:
                        return True
                    config = (next_state, target)
                    if config not in seen:
                        seen.add(config)
                        queue.append(config)
            return False

    def _reachable_deque(
        self,
        tree: Tree,
        scope: int = 0,
        budget: ExecutionBudget | None = None,
    ) -> set[tuple[int, int]]:
        with obs.span("twa.frontier.sweep", budget=budget, strategy="deque"):
            start = (self.initial, scope)
            seen = {start}
            queue = deque([start])
            while queue:
                if budget is not None:
                    budget.tick()
                state, node = queue.popleft()
                observed = observation_at(tree, node, scope)
                for move, next_state in self.options(state, observed):
                    target = apply_move(tree, node, move, scope)
                    if target is None:
                        continue
                    config = (next_state, target)
                    if config not in seen:
                        seen.add(config)
                        queue.append(config)
            return seen


class TwaBuilder:
    """Convenience builder: add transitions with wildcard observations.

    >>> b = TwaBuilder(alphabet=("a", "b"), num_states=2)
    >>> b.add(0, label="a", move=Move.DOWN_FIRST, target=1)   # any flags
    >>> b.add(1, is_leaf=True, move=Move.STAY, target=1)      # any label
    >>> automaton = b.build(initial=0, accepting={1})
    """

    def __init__(self, alphabet: Iterable[str], num_states: int):
        self.alphabet = tuple(alphabet)
        self.num_states = num_states
        self._table: dict[tuple[int, Observation], set[tuple[Move, int]]] = {}

    def observations(
        self,
        label: str | None = None,
        is_root: bool | None = None,
        is_leaf: bool | None = None,
        is_first: bool | None = None,
        is_last: bool | None = None,
    ) -> list[Observation]:
        """All *realizable* observations matching the given constraints.

        (The root is always both a first and a last sibling.)
        """
        result = []
        labels = self.alphabet if label is None else (label,)
        booleans = (False, True)
        for lbl in labels:
            for root in booleans if is_root is None else (is_root,):
                for leaf in booleans if is_leaf is None else (is_leaf,):
                    for first in booleans if is_first is None else (is_first,):
                        for last in booleans if is_last is None else (is_last,):
                            if root and not (first and last):
                                continue
                            result.append(Observation(lbl, root, leaf, first, last))
        return result

    def add(
        self,
        state: int,
        move: Move,
        target: int,
        label: str | None = None,
        is_root: bool | None = None,
        is_leaf: bool | None = None,
        is_first: bool | None = None,
        is_last: bool | None = None,
    ) -> "TwaBuilder":
        """Add ``(move, target)`` for every observation matching the wildcards."""
        for obs in self.observations(label, is_root, is_leaf, is_first, is_last):
            self._table.setdefault((state, obs), set()).add((move, target))
        return self

    def build(self, initial: int, accepting: Iterable[int]) -> TWA:
        transitions = {
            key: frozenset(choices) for key, choices in self._table.items()
        }
        return TWA(self.num_states, initial, frozenset(accepting), transitions)
