"""Tree walking automata (TWA).

A TWA is a sequential device with finitely many states walking a tree one
edge at a time.  At each step it observes the current node's *local type* —
its label plus four boolean flags (root? leaf? first sibling? last sibling?)
— and nondeterministically picks a transition: a move (stay, up, down to the
first/last child, left/right to an adjacent sibling) and a next state.  The
run starts at the root in the initial state and **accepts by reaching an
accepting state** (anywhere in the tree).  Moves that fall off the tree kill
the run.

Membership is decided by reachability in the configuration graph
(state × node), which is the obvious O(|Q|·|T|) algorithm; the bottom-up
*behavior* algorithm in :mod:`repro.automata.behavior` is the structured
alternative that underlies the paper's regularity theorem (T4) and the two
are cross-validated against each other.

All walking machinery takes an optional ``scope`` node: the automaton then
runs on the subtree rooted there as if it were a standalone tree (the scope
root observes root flags; moves leaving the subtree die).  This is exactly
what nested TWA subtree tests need (:mod:`repro.automata.nested`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from enum import Enum
from typing import Iterable

from ..trees.tree import Tree

__all__ = ["Move", "Observation", "TWA", "TwaBuilder", "observation_at"]


class Move(Enum):
    STAY = "stay"
    UP = "up"
    DOWN_FIRST = "down_first"
    DOWN_LAST = "down_last"
    LEFT = "left"
    RIGHT = "right"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Move.{self.name}"


@dataclass(frozen=True)
class Observation:
    """The local type a walking automaton sees at a node."""

    label: str
    is_root: bool
    is_leaf: bool
    is_first: bool
    is_last: bool


def observation_at(tree: Tree, node_id: int, scope: int = 0) -> Observation:
    """The observation at ``node_id`` when walking the subtree of ``scope``."""
    at_scope_root = node_id == scope
    return Observation(
        label=tree.labels[node_id],
        is_root=at_scope_root,
        is_leaf=tree.first_child[node_id] < 0,
        is_first=at_scope_root or tree.prev_sibling[node_id] < 0,
        is_last=at_scope_root or tree.next_sibling[node_id] < 0,
    )


def apply_move(tree: Tree, node_id: int, move: Move, scope: int = 0) -> int | None:
    """The node reached by ``move``, or None if the move falls off the
    (scoped) tree."""
    if move is Move.STAY:
        return node_id
    if move is Move.UP:
        if node_id == scope:
            return None
        return tree.parent[node_id]
    if move is Move.DOWN_FIRST:
        target = tree.first_child[node_id]
        return target if target >= 0 else None
    if move is Move.DOWN_LAST:
        target = tree.last_child[node_id]
        return target if target >= 0 else None
    if move is Move.LEFT:
        if node_id == scope:
            return None
        target = tree.prev_sibling[node_id]
        return target if target >= 0 else None
    if move is Move.RIGHT:
        if node_id == scope:
            return None
        target = tree.next_sibling[node_id]
        return target if target >= 0 else None
    raise ValueError(f"unknown move {move!r}")  # pragma: no cover


@dataclass(frozen=True)
class TWA:
    """A (nondeterministic) tree walking automaton.

    ``transitions`` maps ``(state, observation)`` to a frozenset of
    ``(move, next_state)`` pairs.  Use :class:`TwaBuilder` to write automata
    with wildcard observations.
    """

    num_states: int
    initial: int
    accepting: frozenset[int]
    transitions: dict[tuple[int, Observation], frozenset[tuple[Move, int]]]

    def options(self, state: int, obs: Observation) -> frozenset[tuple[Move, int]]:
        return self.transitions.get((state, obs), frozenset())

    @property
    def is_deterministic(self) -> bool:
        return all(len(choices) <= 1 for choices in self.transitions.values())

    # -- membership via the configuration graph --------------------------------

    def accepts(self, tree: Tree, scope: int = 0) -> bool:
        """Does some run (started at the scope root) reach an accepting state?"""
        if self.initial in self.accepting:
            return True
        start = (self.initial, scope)
        seen = {start}
        queue = deque([start])
        while queue:
            state, node = queue.popleft()
            obs = observation_at(tree, node, scope)
            for move, next_state in self.options(state, obs):
                target = apply_move(tree, node, move, scope)
                if target is None:
                    continue
                if next_state in self.accepting:
                    return True
                config = (next_state, target)
                if config not in seen:
                    seen.add(config)
                    queue.append(config)
        return False

    def reachable_configs(self, tree: Tree, scope: int = 0) -> set[tuple[int, int]]:
        """All reachable (state, node) configurations (for inspection)."""
        start = (self.initial, scope)
        seen = {start}
        queue = deque([start])
        while queue:
            state, node = queue.popleft()
            obs = observation_at(tree, node, scope)
            for move, next_state in self.options(state, obs):
                target = apply_move(tree, node, move, scope)
                if target is None:
                    continue
                config = (next_state, target)
                if config not in seen:
                    seen.add(config)
                    queue.append(config)
        return seen


class TwaBuilder:
    """Convenience builder: add transitions with wildcard observations.

    >>> b = TwaBuilder(alphabet=("a", "b"), num_states=2)
    >>> b.add(0, label="a", move=Move.DOWN_FIRST, target=1)   # any flags
    >>> b.add(1, is_leaf=True, move=Move.STAY, target=1)      # any label
    >>> automaton = b.build(initial=0, accepting={1})
    """

    def __init__(self, alphabet: Iterable[str], num_states: int):
        self.alphabet = tuple(alphabet)
        self.num_states = num_states
        self._table: dict[tuple[int, Observation], set[tuple[Move, int]]] = {}

    def observations(
        self,
        label: str | None = None,
        is_root: bool | None = None,
        is_leaf: bool | None = None,
        is_first: bool | None = None,
        is_last: bool | None = None,
    ) -> list[Observation]:
        """All *realizable* observations matching the given constraints.

        (The root is always both a first and a last sibling.)
        """
        result = []
        labels = self.alphabet if label is None else (label,)
        booleans = (False, True)
        for lbl in labels:
            for root in booleans if is_root is None else (is_root,):
                for leaf in booleans if is_leaf is None else (is_leaf,):
                    for first in booleans if is_first is None else (is_first,):
                        for last in booleans if is_last is None else (is_last,):
                            if root and not (first and last):
                                continue
                            result.append(Observation(lbl, root, leaf, first, last))
        return result

    def add(
        self,
        state: int,
        move: Move,
        target: int,
        label: str | None = None,
        is_root: bool | None = None,
        is_leaf: bool | None = None,
        is_first: bool | None = None,
        is_last: bool | None = None,
    ) -> "TwaBuilder":
        """Add ``(move, target)`` for every observation matching the wildcards."""
        for obs in self.observations(label, is_root, is_leaf, is_first, is_last):
            self._table.setdefault((state, obs), set()).add((move, target))
        return self

    def build(self, initial: int, accepting: Iterable[int]) -> TWA:
        transitions = {
            key: frozenset(choices) for key, choices in self._table.items()
        }
        return TWA(self.num_states, initial, frozenset(accepting), transitions)
