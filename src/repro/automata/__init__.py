"""Automata on strings and trees: the paper's machine models.

* :mod:`repro.automata.strings` — NFAs/DFAs (horizontal-language substrate);
* :mod:`repro.automata.hedge` — hedge automata = the regular tree languages
  (the MSO upper bound of T4/T5), with full boolean/decision toolbox;
* :mod:`repro.automata.twa` — tree walking automata;
* :mod:`repro.automata.behavior` — the bottom-up behavior (loop) algorithm;
* :mod:`repro.automata.nested` — nested TWA, the model the paper introduces;
* :mod:`repro.automata.search` — swap-lemma and separation harnesses.
"""

from .behavior import BehaviorAnalysis, behavior_accepts, subtree_behavior
from .dtd import Dtd, DtdSyntaxError, parse_content_model
from .hedge import DeterministicHedgeAutomaton, HedgeAutomaton
from .nested import GuardedTransition, NestedTWA
from .random_machines import (
    all_observations,
    random_hedge_automaton,
    random_nested_twa,
    random_twa,
)
from .regularity import (
    NestedTwaTreeAcceptor,
    TwaTreeAcceptor,
    nested_twa_find_separating_tree,
    nested_twa_find_tree,
    nested_twa_is_empty,
    nested_twa_language_equivalent,
    twa_find_separating_tree,
    twa_find_tree,
    twa_is_empty,
    twa_language_equivalent,
)
from .search import (
    behavior_signature,
    distinct_behavior_count,
    swap_preserves_acceptance,
    swap_subtrees,
)
from .strings import Dfa, Nfa
from .twa import RUN_STRATEGIES, TWA, Move, Observation, TwaBuilder, observation_at

__all__ = [
    "BehaviorAnalysis",
    "DeterministicHedgeAutomaton",
    "Dfa",
    "Dtd",
    "DtdSyntaxError",
    "GuardedTransition",
    "HedgeAutomaton",
    "Move",
    "NestedTWA",
    "NestedTwaTreeAcceptor",
    "Nfa",
    "Observation",
    "RUN_STRATEGIES",
    "TWA",
    "TwaBuilder",
    "TwaTreeAcceptor",
    "all_observations",
    "behavior_accepts",
    "behavior_signature",
    "distinct_behavior_count",
    "observation_at",
    "parse_content_model",
    "random_hedge_automaton",
    "random_nested_twa",
    "random_twa",
    "subtree_behavior",
    "nested_twa_find_separating_tree",
    "nested_twa_find_tree",
    "nested_twa_is_empty",
    "nested_twa_language_equivalent",
    "swap_preserves_acceptance",
    "swap_subtrees",
    "twa_find_separating_tree",
    "twa_find_tree",
    "twa_is_empty",
    "twa_language_equivalent",
]
