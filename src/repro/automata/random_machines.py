"""Random automata, for property-based cross-validation (T4/C2)."""

from __future__ import annotations

import random
from typing import Sequence

from .nested import GuardedTransition, NestedTWA
from .twa import TWA, Move, Observation, TwaBuilder

__all__ = ["random_twa", "random_nested_twa", "random_hedge_automaton", "all_observations"]

_MOVES = tuple(Move)


def all_observations(alphabet: Sequence[str]) -> list[Observation]:
    """Every realizable observation over ``alphabet``."""
    return TwaBuilder(alphabet, 1).observations()


def random_twa(
    alphabet: Sequence[str] = ("a", "b"),
    num_states: int = 3,
    rng: random.Random | None = None,
    density: float = 0.6,
    max_choices: int = 2,
) -> TWA:
    """A random nondeterministic TWA.

    ``density`` is the probability that a (state, observation) pair has any
    transition at all; when it does, 1..``max_choices`` options are drawn.
    State ``num_states - 1`` is accepting.
    """
    rng = rng or random.Random()
    transitions: dict[tuple[int, Observation], frozenset[tuple[Move, int]]] = {}
    for state in range(num_states):
        for obs in all_observations(alphabet):
            if rng.random() >= density:
                continue
            options = frozenset(
                (rng.choice(_MOVES), rng.randrange(num_states))
                for __ in range(rng.randint(1, max_choices))
            )
            transitions[(state, obs)] = options
    return TWA(num_states, 0, frozenset({num_states - 1}), transitions)


def random_nested_twa(
    alphabet: Sequence[str] = ("a", "b"),
    num_states: int = 3,
    depth: int = 1,
    num_subs: int = 2,
    rng: random.Random | None = None,
    density: float = 0.6,
    guard_probability: float = 0.5,
) -> NestedTWA:
    """A random nested TWA of the given nesting ``depth``."""
    rng = rng or random.Random()
    if depth <= 0:
        return NestedTWA.from_twa(
            random_twa(alphabet, num_states, rng, density)
        )
    subautomata = tuple(
        random_nested_twa(
            alphabet,
            num_states,
            depth - 1,
            num_subs,
            rng,
            density,
            guard_probability,
        )
        for __ in range(num_subs)
    )
    transitions: dict[tuple[int, Observation], frozenset[GuardedTransition]] = {}
    for state in range(num_states):
        for obs in all_observations(alphabet):
            if rng.random() >= density:
                continue
            options = set()
            for __ in range(rng.randint(1, 2)):
                guard: set[tuple[int, bool]] = set()
                if rng.random() < guard_probability:
                    index = rng.randrange(num_subs)
                    guard.add((index, rng.random() < 0.5))
                options.add(
                    GuardedTransition(
                        frozenset(guard),
                        rng.choice(_MOVES),
                        rng.randrange(num_states),
                    )
                )
            transitions[(state, obs)] = frozenset(options)
    return NestedTWA(
        num_states, 0, frozenset({num_states - 1}), transitions, subautomata
    )


def random_hedge_automaton(
    alphabet: Sequence[str] = ("a", "b"),
    num_states: int = 2,
    rng: random.Random | None = None,
    rule_probability: float = 0.8,
):
    """A random nondeterministic hedge automaton.

    Each (state, label) pair gets, with ``rule_probability``, a random
    horizontal language assembled from a small pool of NFA combinators over
    the state set.  State 0 is accepting.
    """
    from .strings import Nfa

    rng = rng or random.Random()
    states = list(range(num_states))

    def random_language() -> "Nfa":
        kind = rng.choice(["empty", "any", "single", "pair", "starred"])
        if kind == "empty":
            return Nfa.empty_word()
        if kind == "any":
            return Nfa.all_words(states)
        if kind == "single":
            return Nfa.any_of(rng.sample(states, rng.randint(1, num_states)))
        if kind == "pair":
            return Nfa.literal((rng.choice(states), rng.choice(states)))
        return Nfa.any_of(
            rng.sample(states, rng.randint(1, num_states))
        ).star()

    from .hedge import HedgeAutomaton

    rules = {}
    for state in states:
        for label in alphabet:
            if rng.random() < rule_probability:
                rules[(state, label)] = random_language()
    return HedgeAutomaton(
        num_states, tuple(alphabet), rules, frozenset({0})
    )
