"""The effective regularity theorem (T4): TWA → bottom-up tree acceptor.

:mod:`repro.automata.behavior` computes behaviors of the subtrees of one
concrete tree.  This module closes the loop of the paper's T4: it turns a
tree walking automaton into a genuine **deterministic bottom-up acceptor**
whose states are *context-indexed behavior tables*, so that language-level
questions about TWAs — emptiness, universality, equivalence, witness
extraction — become decidable by state-space exploration.

Two ingredients:

* **Vertical states.** The behavior of a subtree depends on the flags its
  root will exhibit; a vertical state therefore packs one behavior table per
  placement context: (first,last) ∈ {TT, TF, FT, FF} for subtrees hanging
  under a parent, plus the root context for the whole tree.

* **Horizontal folding (Shepherdson-style).** A walker inside a sequence of
  sibling subtrees moves both ways, so the sequence cannot be summarized by
  a plain left-to-right product — but the *prefix summary* can: for a prefix
  of children, record where a walker entering at the prefix's left end or
  right end can come out (up to the parent, right past the prefix, or
  accept).  Extending a prefix by one more child is a small graph
  reachability between the old summary and the new child's table, so the
  children sequence is consumed by a deterministic fold (with one pending
  child, since the last child wears different flags).

The exploration of reachable vertical states (each with a witness tree)
yields :func:`twa_is_empty`, :func:`twa_find_tree`,
:func:`twa_language_equivalent` and :func:`twa_find_separating_tree` — all
exact.  Membership via :meth:`TwaTreeAcceptor.accepts` is a *third*
independent membership algorithm, cross-validated against the other two by
the test suite.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

from ..trees.tree import Tree
from .twa import TWA, Move, Observation

__all__ = [
    "TwaTreeAcceptor",
    "NestedTwaTreeAcceptor",
    "twa_is_empty",
    "twa_find_tree",
    "twa_language_equivalent",
    "twa_find_separating_tree",
    "nested_twa_is_empty",
    "nested_twa_find_tree",
    "nested_twa_language_equivalent",
    "nested_twa_find_separating_tree",
]

#: Outcomes inside tables/summaries: ("accept",), ("up", q), ("right", q),
#: ("left", q).  Summaries never expose "left" (a prefix starts at a first
#: child, where LEFT dies).
ACCEPT = ("accept",)

#: A canonical behavior table: tuple over states of sorted outcome tuples.
Table = tuple

#: Placement contexts of a subtree root: (is_root, is_first, is_last).
CONTEXTS = (
    (False, True, True),
    (False, True, False),
    (False, False, True),
    (False, False, False),
    (True, True, True),
)

#: A vertical state: one canonical table per context, same order as CONTEXTS.
VState = tuple

#: A summary: per entry state, a frozenset of outcomes.
Summary = tuple


def _canonical(table: dict[int, set]) -> Table:
    return tuple(tuple(sorted(table[q])) for q in sorted(table))


def _as_dict(table: Table) -> dict[int, frozenset]:
    return {q: frozenset(outs) for q, outs in enumerate(table)}


class TwaTreeAcceptor:
    """A deterministic bottom-up acceptor equivalent to a TWA."""

    def __init__(self, twa: TWA, alphabet: Iterable[str]):
        self.twa = twa
        self.alphabet = tuple(alphabet)
        if not self.alphabet:
            raise ValueError("the alphabet must be nonempty")
        self._reachable: dict[VState, Tree] | None = None

    # ------------------------------------------------------------------
    # Horizontal folding
    # ------------------------------------------------------------------
    # A fold state is None (no children seen) or
    # (enterL, enterR, pending_vstate, pending_is_first) where the summaries
    # cover all children *before* the pending one.

    def fold_empty(self):
        return None

    def fold_step(self, fold, child: VState):
        if fold is None:
            return (_empty_summary(), _empty_summary(), child, True)
        enterL, enterR, pending, pending_first = fold
        table = _context_table(pending, is_first=pending_first, is_last=False)
        enterL, enterR = _extend_summaries(
            enterL, enterR, table, self.twa.num_states,
            prefix_empty=pending_first,
        )
        return (enterL, enterR, child, False)

    def fold_finish(self, label: str, fold) -> VState:
        """Close the children sequence and compute the node's vertical state."""
        num_states = self.twa.num_states
        if fold is None:
            full_L = full_R = None
            is_leaf = True
        else:
            enterL, enterR, pending, pending_first = fold
            table = _context_table(pending, is_first=pending_first, is_last=True)
            full_L, full_R = _extend_summaries(
                enterL, enterR, table, num_states, prefix_empty=pending_first
            )
            is_leaf = False

        tables = []
        for is_root, is_first, is_last in CONTEXTS:
            obs = Observation(label, is_root, is_leaf, is_first, is_last)
            tables.append(self._node_table(obs, full_L, full_R))
        return tuple(tables)

    def _node_table(self, obs: Observation, full_L, full_R) -> Table:
        """Behavior table of a node with the given observation, given the
        full-sequence summaries of its children (None when a leaf)."""
        twa = self.twa
        table: dict[int, set] = {}
        for q0 in range(twa.num_states):
            outcomes: set = set()
            seen = {("V", q0)}
            queue = deque([("V", q0)])

            def push(vertex):
                if vertex not in seen:
                    seen.add(vertex)
                    queue.append(vertex)

            def feed(summary_outcomes):
                for outcome in summary_outcomes:
                    if outcome == ACCEPT:
                        outcomes.add(ACCEPT)
                    elif outcome[0] == "up":
                        push(("V", outcome[1]))
                    # "right" exits of the full sequence fall past the last
                    # child and die; "left" never escapes a sequence.

            while queue:
                kind, q = queue.popleft()
                assert kind == "V"
                if q in twa.accepting:
                    outcomes.add(ACCEPT)
                    continue
                for move, nq in twa.options(q, obs):
                    if move is Move.STAY:
                        push(("V", nq))
                    elif move is Move.UP:
                        outcomes.add(("up", nq))
                    elif move is Move.LEFT:
                        outcomes.add(("left", nq))
                    elif move is Move.RIGHT:
                        outcomes.add(("right", nq))
                    elif move is Move.DOWN_FIRST:
                        if full_L is not None:
                            feed(full_L[nq])
                    elif move is Move.DOWN_LAST:
                        if full_R is not None:
                            feed(full_R[nq])
            if q0 in twa.accepting:
                outcomes.add(ACCEPT)
            table[q0] = outcomes
        return _canonical(table)

    # ------------------------------------------------------------------
    # Membership (the third algorithm)
    # ------------------------------------------------------------------

    def state_of(self, tree: Tree, node_id: int = 0) -> VState:
        states: dict[int, VState] = {}
        for v in reversed(tree.subtree_ids(node_id)):
            fold = self.fold_empty()
            for c in tree.children_ids(v):
                fold = self.fold_step(fold, states[c])
            states[v] = self.fold_finish(tree.labels[v], fold)
        return states[node_id]

    def accepts_state(self, state: VState) -> bool:
        root_table = _as_dict(state[len(CONTEXTS) - 1])
        return ACCEPT in root_table[self.twa.initial]

    def accepts(self, tree: Tree) -> bool:
        return self.accepts_state(self.state_of(tree))

    # ------------------------------------------------------------------
    # Language-level exploration
    # ------------------------------------------------------------------

    def reachable_states(self, max_states: int | None = None) -> dict[VState, Tree]:
        """Every vertical state realized by some tree over the alphabet,
        with a witness tree each.

        Exploration is exact; ``max_states`` is a safety valve for huge
        automata (raises if exceeded).
        """
        if self._reachable is not None:
            return self._reachable
        states: dict[VState, Tree] = {}
        # Horizontal exploration: fold summaries reachable with witnesses of
        # the children consumed so far.
        folds: dict[object, list[Tree]] = {_fold_key(None): []}
        fold_values: dict[object, object] = {_fold_key(None): None}
        changed = True
        while changed:
            changed = False
            for key, children in list(folds.items()):
                fold = fold_values[key]
                for label in self.alphabet:
                    vstate = self.fold_finish(label, fold)
                    if vstate not in states:
                        shape = (label, [t.to_shape() for t in children])
                        states[vstate] = Tree.build(shape)
                        changed = True
                        if max_states is not None and len(states) > max_states:
                            raise RuntimeError(
                                f"state exploration exceeded {max_states} states"
                            )
            for vstate, witness in list(states.items()):
                for key, children in list(folds.items()):
                    fold = fold_values[key]
                    extended = self.fold_step(fold, vstate)
                    ekey = _fold_key(extended)
                    if ekey not in folds:
                        folds[ekey] = children + [witness]
                        fold_values[ekey] = extended
                        changed = True
        self._reachable = states
        return states


def _fold_key(fold) -> object:
    if fold is None:
        return None
    enterL, enterR, pending, pending_first = fold
    return (enterL, enterR, pending, pending_first)


def _empty_summary() -> Summary:
    return ()


def _context_table(vstate: VState, is_first: bool, is_last: bool) -> Table:
    index = {
        (True, True): 0,
        (True, False): 1,
        (False, True): 2,
        (False, False): 3,
    }[(is_first, is_last)]
    return vstate[index]


def _extend_summaries(
    enterL: Summary,
    enterR: Summary,
    child_table: Table,
    num_states: int,
    prefix_empty: bool,
) -> tuple[Summary, Summary]:
    """Append one child (with its context table) to the prefix summaries.

    The interaction between the old prefix and the new child is resolved by
    reachability in a graph with nodes ("P", q) — entering the old prefix at
    its right end — and ("C", q) — entering the new child.
    """
    child = _as_dict(child_table)
    old_R = _summary_dict(enterR, num_states)
    old_L = _summary_dict(enterL, num_states)

    def closure(start_kind: str, start_q: int) -> frozenset:
        outcomes: set = set()
        seen = {(start_kind, start_q)}
        queue = deque([(start_kind, start_q)])
        while queue:
            kind, q = queue.popleft()
            if kind == "C":
                for outcome in child[q]:
                    if outcome == ACCEPT:
                        outcomes.add(ACCEPT)
                    elif outcome[0] == "up":
                        outcomes.add(outcome)
                    elif outcome[0] == "right":
                        outcomes.add(outcome)
                    elif outcome[0] == "left" and not prefix_empty:
                        vertex = ("P", outcome[1])
                        if vertex not in seen:
                            seen.add(vertex)
                            queue.append(vertex)
                    # left with empty prefix: the child is first, LEFT dies.
            else:  # "P": entering old prefix from the right
                for outcome in old_R[q]:
                    if outcome == ACCEPT:
                        outcomes.add(ACCEPT)
                    elif outcome[0] == "up":
                        outcomes.add(outcome)
                    elif outcome[0] == "right":
                        vertex = ("C", outcome[1])
                        if vertex not in seen:
                            seen.add(vertex)
                            queue.append(vertex)
        return frozenset(outcomes)

    new_R = tuple(tuple(sorted(closure("C", q))) for q in range(num_states))

    if prefix_empty:
        new_L = new_R
    else:
        # Enter the old prefix at its left end; its right exits continue
        # into the new child (and may bounce back).
        new_L_entries = []
        for q in range(num_states):
            outcomes: set = set()
            for outcome in old_L[q]:
                if outcome == ACCEPT or outcome[0] == "up":
                    outcomes.add(outcome)
                elif outcome[0] == "right":
                    outcomes.update(closure("C", outcome[1]))
            new_L_entries.append(tuple(sorted(outcomes)))
        new_L = tuple(new_L_entries)
    return new_L, new_R


def _summary_dict(summary: Summary, num_states: int) -> dict[int, frozenset]:
    if not summary:
        return {q: frozenset() for q in range(num_states)}
    return {q: frozenset(outs) for q, outs in enumerate(summary)}


# ---------------------------------------------------------------------------
# Exact language-level decision procedures for TWAs
# ---------------------------------------------------------------------------


def twa_find_tree(twa: TWA, alphabet: Iterable[str]) -> Tree | None:
    """A tree the TWA accepts, or None if its language is empty (exact)."""
    acceptor = TwaTreeAcceptor(twa, alphabet)
    for state, witness in acceptor.reachable_states().items():
        if acceptor.accepts_state(state):
            return witness
    return None


def twa_is_empty(twa: TWA, alphabet: Iterable[str]) -> bool:
    """Is the TWA's language (over the alphabet) empty?  Exact."""
    return twa_find_tree(twa, alphabet) is None


def twa_find_separating_tree(
    left: TWA, right: TWA, alphabet: Iterable[str]
) -> Tree | None:
    """A tree accepted by exactly one of the TWAs, or None if their
    languages over the alphabet coincide (exact).

    Explores the product of the two acceptors' state spaces.
    """
    alphabet = tuple(alphabet)
    acceptor_left = TwaTreeAcceptor(left, alphabet)
    acceptor_right = TwaTreeAcceptor(right, alphabet)

    states: dict[tuple[VState, VState], Tree] = {}
    folds: dict[object, tuple[object, object, list[Tree]]] = {
        (None, None): (None, None, [])
    }
    changed = True
    while changed:
        changed = False
        for (kl, kr), (fl, fr, children) in list(folds.items()):
            for label in alphabet:
                pair = (
                    acceptor_left.fold_finish(label, fl),
                    acceptor_right.fold_finish(label, fr),
                )
                if pair not in states:
                    shape = (label, [t.to_shape() for t in children])
                    states[pair] = Tree.build(shape)
                    changed = True
        for (sl, sr), witness in list(states.items()):
            for (kl, kr), (fl, fr, children) in list(folds.items()):
                nfl = acceptor_left.fold_step(fl, sl)
                nfr = acceptor_right.fold_step(fr, sr)
                key = (_fold_key(nfl), _fold_key(nfr))
                if key not in folds:
                    folds[key] = (nfl, nfr, children + [witness])
                    changed = True
    for (sl, sr), witness in states.items():
        if acceptor_left.accepts_state(sl) != acceptor_right.accepts_state(sr):
            return witness
    return None


def twa_language_equivalent(
    left: TWA, right: TWA, alphabet: Iterable[str]
) -> bool:
    """Do the two TWAs accept the same trees over the alphabet?  Exact."""
    return twa_find_separating_tree(left, right, alphabet) is None


# ---------------------------------------------------------------------------
# Nested TWA: the same construction, with guard bits resolved per node
# ---------------------------------------------------------------------------


class NestedTwaTreeAcceptor:
    """A deterministic bottom-up acceptor equivalent to a *nested* TWA.

    Guards test sub-automata on the subtree of the current node, and a
    subtree's acceptance by each sub-automaton is exactly the kind of
    bottom-up information vertical states carry.  A vertical state is
    therefore the tuple of the sub-acceptors' vertical states followed by
    the main automaton's five context tables, computed with each node's
    guard bits resolved from the sub-states *at that node*.

    This makes emptiness and equivalence of nested TWA — the model the
    paper introduces — exactly decidable here, one nesting level at a time.
    """

    def __init__(self, nested, alphabet: Iterable[str]):
        self.nested = nested
        self.alphabet = tuple(alphabet)
        if not self.alphabet:
            raise ValueError("the alphabet must be nonempty")
        self.subacceptors = tuple(
            NestedTwaTreeAcceptor(sub, self.alphabet) for sub in nested.subautomata
        )
        self._reachable: dict[tuple, Tree] | None = None

    # -- folding (children sequences) ----------------------------------------

    def fold_empty(self):
        return (None, tuple(sub.fold_empty() for sub in self.subacceptors))

    def fold_step(self, fold, child):
        own_fold, sub_folds = fold
        child_subs = child[: len(self.subacceptors)]
        child_own = child[len(self.subacceptors)]
        new_subs = tuple(
            sub.fold_step(sf, cs)
            for sub, sf, cs in zip(self.subacceptors, sub_folds, child_subs)
        )
        if own_fold is None:
            new_own = (_empty_summary(), _empty_summary(), child_own, True)
        else:
            enterL, enterR, pending, pending_first = own_fold
            table = _context_table(pending, is_first=pending_first, is_last=False)
            enterL, enterR = _extend_summaries(
                enterL, enterR, table, self.nested.num_states,
                prefix_empty=pending_first,
            )
            new_own = (enterL, enterR, child_own, False)
        return (new_own, new_subs)

    def fold_finish(self, label: str, fold):
        own_fold, sub_folds = fold
        sub_states = tuple(
            sub.fold_finish(label, sf)
            for sub, sf in zip(self.subacceptors, sub_folds)
        )
        bits = tuple(
            sub.accepts_state(state)
            for sub, state in zip(self.subacceptors, sub_states)
        )
        num_states = self.nested.num_states
        if own_fold is None:
            full_L = full_R = None
            is_leaf = True
        else:
            enterL, enterR, pending, pending_first = own_fold
            table = _context_table(pending, is_first=pending_first, is_last=True)
            full_L, full_R = _extend_summaries(
                enterL, enterR, table, num_states, prefix_empty=pending_first
            )
            is_leaf = False
        tables = []
        for is_root, is_first, is_last in CONTEXTS:
            obs = Observation(label, is_root, is_leaf, is_first, is_last)
            tables.append(self._node_table(obs, bits, full_L, full_R))
        return sub_states + (tuple(tables),)

    def _node_table(self, obs: Observation, bits, full_L, full_R) -> Table:
        nested = self.nested
        table: dict[int, set] = {}
        for q0 in range(nested.num_states):
            outcomes: set = set()
            seen = {q0}
            queue = deque([q0])

            def push(state: int) -> None:
                if state not in seen:
                    seen.add(state)
                    queue.append(state)

            def feed(summary_outcomes) -> None:
                for outcome in summary_outcomes:
                    if outcome == ACCEPT:
                        outcomes.add(ACCEPT)
                    elif outcome[0] == "up":
                        push(outcome[1])

            while queue:
                q = queue.popleft()
                if q in nested.accepting:
                    outcomes.add(ACCEPT)
                    continue
                for option in nested.options(q, obs):
                    if not all(bits[i] == sign for i, sign in option.guard):
                        continue
                    move, nq = option.move, option.target
                    if move is Move.STAY:
                        push(nq)
                    elif move is Move.UP:
                        outcomes.add(("up", nq))
                    elif move is Move.LEFT:
                        outcomes.add(("left", nq))
                    elif move is Move.RIGHT:
                        outcomes.add(("right", nq))
                    elif move is Move.DOWN_FIRST:
                        if full_L is not None:
                            feed(full_L[nq])
                    elif move is Move.DOWN_LAST:
                        if full_R is not None:
                            feed(full_R[nq])
            if q0 in nested.accepting:
                outcomes.add(ACCEPT)
            table[q0] = outcomes
        return _canonical(table)

    # -- membership and exploration ---------------------------------------------

    def state_of(self, tree: Tree, node_id: int = 0):
        states: dict[int, tuple] = {}
        for v in reversed(tree.subtree_ids(node_id)):
            fold = self.fold_empty()
            for c in tree.children_ids(v):
                fold = self.fold_step(fold, states[c])
            states[v] = self.fold_finish(tree.labels[v], fold)
        return states[node_id]

    def accepts_state(self, state) -> bool:
        own = state[len(self.subacceptors)]
        root_table = _as_dict(own[len(CONTEXTS) - 1])
        return ACCEPT in root_table[self.nested.initial]

    def accepts(self, tree: Tree) -> bool:
        return self.accepts_state(self.state_of(tree))

    def reachable_states(self, max_states: int | None = None) -> dict[tuple, Tree]:
        if self._reachable is not None:
            return self._reachable
        states: dict[tuple, Tree] = {}
        folds: dict[object, tuple[object, list[Tree]]] = {}
        empty = self.fold_empty()
        folds[self._fold_key(empty)] = (empty, [])
        changed = True
        while changed:
            changed = False
            for key, (fold, children) in list(folds.items()):
                for label in self.alphabet:
                    vstate = self.fold_finish(label, fold)
                    if vstate not in states:
                        shape = (label, [t.to_shape() for t in children])
                        states[vstate] = Tree.build(shape)
                        changed = True
                        if max_states is not None and len(states) > max_states:
                            raise RuntimeError(
                                f"state exploration exceeded {max_states} states"
                            )
            for vstate, witness in list(states.items()):
                for key, (fold, children) in list(folds.items()):
                    extended = self.fold_step(fold, vstate)
                    ekey = self._fold_key(extended)
                    if ekey not in folds:
                        folds[ekey] = (extended, children + [witness])
                        changed = True
        self._reachable = states
        return states

    def _fold_key(self, fold) -> object:
        own_fold, sub_folds = fold
        return (
            _fold_key(own_fold),
            tuple(
                sub._fold_key(sf)
                for sub, sf in zip(self.subacceptors, sub_folds)
            ),
        )


def nested_twa_find_tree(nested, alphabet: Iterable[str]) -> Tree | None:
    """A tree the nested TWA accepts, or None if its language is empty."""
    acceptor = NestedTwaTreeAcceptor(nested, alphabet)
    for state, witness in acceptor.reachable_states().items():
        if acceptor.accepts_state(state):
            return witness
    return None


def nested_twa_is_empty(nested, alphabet: Iterable[str]) -> bool:
    """Exact emptiness for nested TWA."""
    return nested_twa_find_tree(nested, alphabet) is None


def nested_twa_find_separating_tree(left, right, alphabet: Iterable[str]) -> Tree | None:
    """A tree accepted by exactly one of two nested TWAs, or None."""
    alphabet = tuple(alphabet)
    acc_left = NestedTwaTreeAcceptor(left, alphabet)
    acc_right = NestedTwaTreeAcceptor(right, alphabet)
    states: dict[tuple, Tree] = {}
    el, er = acc_left.fold_empty(), acc_right.fold_empty()
    folds = {(acc_left._fold_key(el), acc_right._fold_key(er)): (el, er, [])}
    changed = True
    while changed:
        changed = False
        for key, (fl, fr, children) in list(folds.items()):
            for label in alphabet:
                pair = (
                    acc_left.fold_finish(label, fl),
                    acc_right.fold_finish(label, fr),
                )
                if pair not in states:
                    shape = (label, [t.to_shape() for t in children])
                    states[pair] = Tree.build(shape)
                    changed = True
        for (sl, sr), witness in list(states.items()):
            for key, (fl, fr, children) in list(folds.items()):
                nfl = acc_left.fold_step(fl, sl)
                nfr = acc_right.fold_step(fr, sr)
                nkey = (acc_left._fold_key(nfl), acc_right._fold_key(nfr))
                if nkey not in folds:
                    folds[nkey] = (nfl, nfr, children + [witness])
                    changed = True
    for (sl, sr), witness in states.items():
        if acc_left.accepts_state(sl) != acc_right.accepts_state(sr):
            return witness
    return None


def nested_twa_language_equivalent(left, right, alphabet: Iterable[str]) -> bool:
    """Exact language equivalence for nested TWA."""
    return nested_twa_find_separating_tree(left, right, alphabet) is None
