"""Finite automata over strings — the horizontal-language substrate.

Hedge automata (unranked tree automata, :mod:`repro.automata.hedge`) attach a
*horizontal* string language over their own state set to every (state, label)
rule; this module supplies those languages as NFAs/DFAs over arbitrary
hashable symbols, with the standard toolbox: Thompson-style builders,
determinization, product, complement, emptiness and equivalence.

Everything is deliberately explicit and self-contained (no external automata
libraries), per the build-every-substrate rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable, Sequence

__all__ = ["Nfa", "Dfa"]

Symbol = Hashable


@dataclass(frozen=True)
class Nfa:
    """A nondeterministic finite automaton with ε-moves.

    ``transitions`` maps ``(state, symbol)`` to a frozenset of states;
    ``epsilon`` maps a state to a frozenset of ε-successors.  States are
    integers local to the automaton.
    """

    num_states: int
    initial: frozenset[int]
    accepting: frozenset[int]
    transitions: dict[tuple[int, Symbol], frozenset[int]] = field(default_factory=dict)
    epsilon: dict[int, frozenset[int]] = field(default_factory=dict)

    # -- constructors ------------------------------------------------------

    @staticmethod
    def literal(word: Sequence[Symbol]) -> "Nfa":
        """The singleton language {word}."""
        n = len(word)
        transitions = {
            (i, symbol): frozenset({i + 1}) for i, symbol in enumerate(word)
        }
        return Nfa(n + 1, frozenset({0}), frozenset({n}), transitions)

    @staticmethod
    def empty_word() -> "Nfa":
        """The language {ε}."""
        return Nfa.literal(())

    @staticmethod
    def nothing() -> "Nfa":
        """The empty language ∅."""
        return Nfa(1, frozenset({0}), frozenset())

    @staticmethod
    def any_of(symbols: Iterable[Symbol]) -> "Nfa":
        """The language of single symbols drawn from ``symbols``."""
        transitions = {(0, s): frozenset({1}) for s in symbols}
        return Nfa(2, frozenset({0}), frozenset({1}), transitions)

    @staticmethod
    def all_words(symbols: Iterable[Symbol]) -> "Nfa":
        """Σ* over the given symbols."""
        return Nfa.any_of(symbols).star()

    # -- regular operations ------------------------------------------------

    def _shift(self, offset: int) -> tuple[dict, dict]:
        transitions = {
            (q + offset, s): frozenset(r + offset for r in targets)
            for (q, s), targets in self.transitions.items()
        }
        epsilon = {
            q + offset: frozenset(r + offset for r in targets)
            for q, targets in self.epsilon.items()
        }
        return transitions, epsilon

    def union(self, other: "Nfa") -> "Nfa":
        t1, e1 = self._shift(0)
        t2, e2 = other._shift(self.num_states)
        return Nfa(
            self.num_states + other.num_states,
            self.initial | frozenset(q + self.num_states for q in other.initial),
            self.accepting | frozenset(q + self.num_states for q in other.accepting),
            {**t1, **t2},
            {**e1, **e2},
        )

    def concat(self, other: "Nfa") -> "Nfa":
        t1, e1 = self._shift(0)
        t2, e2 = other._shift(self.num_states)
        epsilon = {**e1, **e2}
        bridge = frozenset(q + self.num_states for q in other.initial)
        for q in self.accepting:
            epsilon[q] = epsilon.get(q, frozenset()) | bridge
        return Nfa(
            self.num_states + other.num_states,
            self.initial,
            frozenset(q + self.num_states for q in other.accepting),
            {**t1, **t2},
            epsilon,
        )

    def star(self) -> "Nfa":
        t, e = self._shift(1)
        epsilon = dict(e)
        start = frozenset({0})
        epsilon[0] = frozenset(q + 1 for q in self.initial)
        for q in self.accepting:
            shifted = q + 1
            epsilon[shifted] = epsilon.get(shifted, frozenset()) | frozenset({0})
        return Nfa(
            self.num_states + 1,
            start,
            frozenset({0}),
            t,
            epsilon,
        )

    def plus(self) -> "Nfa":
        return self.concat(self.star())

    def optional(self) -> "Nfa":
        return self.union(Nfa.empty_word())

    def repeat(self, times: int) -> "Nfa":
        """Exactly ``times`` repetitions."""
        result = Nfa.empty_word()
        for _ in range(times):
            result = result.concat(self)
        return result

    # -- semantics -----------------------------------------------------------

    def _closure(self, states: frozenset[int]) -> frozenset[int]:
        stack = list(states)
        seen = set(states)
        while stack:
            q = stack.pop()
            for r in self.epsilon.get(q, ()):
                if r not in seen:
                    seen.add(r)
                    stack.append(r)
        return frozenset(seen)

    def step(self, states: frozenset[int], symbol: Symbol) -> frozenset[int]:
        """One symbol of subset simulation (ε-closed in and out)."""
        current = self._closure(states)
        nxt: set[int] = set()
        for q in current:
            nxt.update(self.transitions.get((q, symbol), ()))
        return self._closure(frozenset(nxt))

    def start_set(self) -> frozenset[int]:
        return self._closure(self.initial)

    def is_accepting_set(self, states: frozenset[int]) -> bool:
        return bool(self._closure(states) & self.accepting)

    def accepts(self, word: Sequence[Symbol]) -> bool:
        states = self.start_set()
        for symbol in word:
            states = self.step(states, symbol)
            if not states:
                return False
        return self.is_accepting_set(states)

    def accepts_some_choice(self, choice_sets: Sequence[Iterable[Symbol]]) -> bool:
        """Is some word ``w`` with ``w[i] ∈ choice_sets[i]`` accepted?

        This is the query hedge-automaton membership asks of its horizontal
        languages: each child contributes a *set* of possible states.
        """
        states = self.start_set()
        for choices in choice_sets:
            nxt: set[int] = set()
            for symbol in choices:
                nxt.update(self.step(states, symbol))
            states = frozenset(nxt)
            if not states:
                return False
        return self.is_accepting_set(states)

    def symbols(self) -> frozenset[Symbol]:
        """All symbols mentioned by transitions."""
        return frozenset(symbol for (__, symbol) in self.transitions)

    # -- conversion -----------------------------------------------------------

    def determinize(self, alphabet: Iterable[Symbol]) -> "Dfa":
        """Subset construction over an explicit alphabet (complete DFA)."""
        alphabet = tuple(alphabet)
        start = self.start_set()
        index: dict[frozenset[int], int] = {start: 0}
        worklist = [start]
        transitions: dict[tuple[int, Symbol], int] = {}
        accepting: set[int] = set()
        while worklist:
            current = worklist.pop()
            current_id = index[current]
            if self.is_accepting_set(current):
                accepting.add(current_id)
            for symbol in alphabet:
                target = self.step(current, symbol)
                if target not in index:
                    index[target] = len(index)
                    worklist.append(target)
                transitions[(current_id, symbol)] = index[target]
        return Dfa(len(index), 0, frozenset(accepting), transitions, tuple(alphabet))


@dataclass(frozen=True)
class Dfa:
    """A complete deterministic finite automaton over an explicit alphabet."""

    num_states: int
    initial: int
    accepting: frozenset[int]
    transitions: dict[tuple[int, Symbol], int]
    alphabet: tuple[Symbol, ...]

    def step(self, state: int, symbol: Symbol) -> int:
        return self.transitions[(state, symbol)]

    def accepts(self, word: Sequence[Symbol]) -> bool:
        state = self.initial
        for symbol in word:
            state = self.step(state, symbol)
        return state in self.accepting

    def complement(self) -> "Dfa":
        return Dfa(
            self.num_states,
            self.initial,
            frozenset(range(self.num_states)) - self.accepting,
            self.transitions,
            self.alphabet,
        )

    def product(self, other: "Dfa", accept_both: bool = True) -> "Dfa":
        """Product automaton; accepting = AND (default) or OR of components."""
        if set(self.alphabet) != set(other.alphabet):
            raise ValueError("product requires identical alphabets")
        index: dict[tuple[int, int], int] = {}
        transitions: dict[tuple[int, Symbol], int] = {}
        accepting: set[int] = set()

        def get_id(pair: tuple[int, int]) -> int:
            if pair not in index:
                index[pair] = len(index)
            return index[pair]

        start = get_id((self.initial, other.initial))
        worklist = [(self.initial, other.initial)]
        seen = {(self.initial, other.initial)}
        while worklist:
            a, b = worklist.pop()
            pair_id = get_id((a, b))
            in_a = a in self.accepting
            in_b = b in other.accepting
            if (in_a and in_b) if accept_both else (in_a or in_b):
                accepting.add(pair_id)
            for symbol in self.alphabet:
                target = (self.step(a, symbol), other.step(b, symbol))
                if target not in seen:
                    seen.add(target)
                    worklist.append(target)
                transitions[(pair_id, symbol)] = get_id(target)
        return Dfa(len(index), start, frozenset(accepting), transitions, self.alphabet)

    def is_empty(self) -> bool:
        """Is the language empty? (Reachability to an accepting state.)"""
        return self.find_word() is None

    def find_word(self) -> tuple[Symbol, ...] | None:
        """A shortest accepted word, or None if the language is empty."""
        parent: dict[int, tuple[int, Symbol] | None] = {self.initial: None}
        queue = [self.initial]
        while queue:
            state = queue.pop(0)
            if state in self.accepting:
                word: list[Symbol] = []
                cursor = state
                while parent[cursor] is not None:
                    prev, symbol = parent[cursor]  # type: ignore[misc]
                    word.append(symbol)
                    cursor = prev
                return tuple(reversed(word))
            for symbol in self.alphabet:
                target = self.step(state, symbol)
                if target not in parent:
                    parent[target] = (state, symbol)
                    queue.append(target)
        return None

    def equivalent(self, other: "Dfa") -> bool:
        """Language equality, via symmetric-difference emptiness."""
        left = self.product(other.complement())
        right = other.product(self.complement())
        return left.is_empty() and right.is_empty()
