"""Hypothesis strategies for repro objects — for downstream property tests.

The project's own suite uses these; they are exported so users extending the
library (new rewrites, new translations, new automata constructions) can
property-test against the same distributions::

    from hypothesis import given
    from repro.testing import trees, node_expressions

    @given(tree=trees(max_size=10), expr=node_expressions())
    def test_my_rewrite_is_sound(tree, expr):
        ...

Strategies are seed-based wrappers around the library's own samplers, so the
distributions match the ones used throughout EXPERIMENTS.md.
"""

from __future__ import annotations

import random
from typing import Sequence

from hypothesis import strategies as st

from .logic.random_formulas import FormulaSampler
from .trees.generate import random_tree
from .xpath.fragments import Dialect
from .xpath.random_exprs import ExprSampler

__all__ = ["trees", "node_expressions", "path_expressions", "formulas"]


def trees(
    min_size: int = 1,
    max_size: int = 12,
    alphabet: Sequence[str] = ("a", "b"),
):
    """A strategy producing random :class:`~repro.trees.tree.Tree` objects."""
    return st.builds(
        lambda size, seed: random_tree(size, alphabet, random.Random(seed)),
        st.integers(min_value=min_size, max_value=max_size),
        st.integers(min_value=0, max_value=2**32 - 1),
    )


def node_expressions(
    max_budget: int = 10,
    alphabet: Sequence[str] = ("a", "b"),
    dialect: Dialect = Dialect.REGULAR_W,
    downward_only: bool = False,
):
    """A strategy producing random node expressions of the given dialect."""
    return st.builds(
        lambda budget, seed: ExprSampler(
            alphabet, random.Random(seed), dialect, downward_only
        ).node(budget),
        st.integers(min_value=1, max_value=max_budget),
        st.integers(min_value=0, max_value=2**32 - 1),
    )


def path_expressions(
    max_budget: int = 10,
    alphabet: Sequence[str] = ("a", "b"),
    dialect: Dialect = Dialect.REGULAR_W,
    downward_only: bool = False,
):
    """A strategy producing random path expressions of the given dialect."""
    return st.builds(
        lambda budget, seed: ExprSampler(
            alphabet, random.Random(seed), dialect, downward_only
        ).path(budget),
        st.integers(min_value=1, max_value=max_budget),
        st.integers(min_value=0, max_value=2**32 - 1),
    )


def formulas(
    free: Sequence[str] = ("x",),
    max_budget: int = 8,
    alphabet: Sequence[str] = ("a", "b"),
    allow_tc: bool = True,
):
    """A strategy producing random FO(MTC) formulas with free vars ⊆ ``free``."""
    return st.builds(
        lambda budget, seed: FormulaSampler(
            alphabet, random.Random(seed), allow_tc
        ).formula(list(free), budget),
        st.integers(min_value=1, max_value=max_budget),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
