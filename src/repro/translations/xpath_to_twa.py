"""Compiling downward Regular XPath(W) to nested tree walking automata (T3).

The paper's T3 states that nested TWA capture exactly Regular XPath(W) =
FO(MTC).  The general construction runs through the paper's loop normal
form; what we implement — and validate on exhaustive corpora — is the
compositional compiler for the *downward* fragment (axes ``self``/``child``/
``descendant``/``descendant_or_self`` plus stars, filters, union and ``W``),
which is precisely where the nesting mechanism earns its keep:

* A node expression ``φ`` compiles to a nested TWA ``N_φ`` with the
  invariant: **``N_φ`` accepts the subtree rooted at v iff v ⊨ φ** (in
  subtree scope, which for downward ``φ`` coincides with global truth —
  that's the fragment's defining property, and why ``W`` compiles to the
  identity).
* Boolean connectives become *guards*: ``¬φ`` is a one-state automaton whose
  only transition is guarded by non-acceptance of ``N_φ`` on the current
  subtree — negation costs one nesting level instead of a complementation
  construction.
* ``⟨p⟩`` compiles the path ``p`` to a walking program: ``child`` is
  "down-first, then zero or more right", composition is concatenation, star
  is a loop, and filters ``[ψ]`` become guarded stay-transitions testing
  ``N_ψ`` on the subtree of the intermediate node.

Non-downward expressions raise :class:`UnsupportedForTwa` (see the
substitution table in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..automata.nested import GuardedTransition, NestedTWA
from ..automata.twa import Move, Observation, TwaBuilder
from ..trees.axes import Axis
from ..xpath import ast as xp
from ..xpath.fragments import is_downward

__all__ = ["UnsupportedForTwa", "compile_node_expr", "compile_exists_path"]


class UnsupportedForTwa(ValueError):
    """Raised for expressions outside the downward fragment."""


def _all_observations(alphabet: Sequence[str]) -> list[Observation]:
    return TwaBuilder(alphabet, 1).observations()


def _label_observations(alphabet: Sequence[str], label: str) -> list[Observation]:
    return TwaBuilder(alphabet, 1).observations(label=label)


@dataclass
class _PathProgram:
    """An ε-free NFA over walking instructions.

    Edges carry either a :class:`Move` or a guard (index into the collected
    sub-automata, with a sign); ``finals`` mark "the path has been matched".
    """

    num_states: int = 2  # 0 = start, 1 = final by convention of builders
    edges: list[tuple[int, object, int]] = field(default_factory=list)
    start: int = 0
    final: int = 1

    def fresh(self) -> int:
        state = self.num_states
        self.num_states += 1
        return state


@dataclass
class _Compiler:
    alphabet: tuple[str, ...]

    def compile_node(self, expr: xp.NodeExpr) -> NestedTWA:
        if not is_downward(expr):
            raise UnsupportedForTwa(
                f"{expr} navigates outside the downward fragment; the general "
                "Regular XPath(W) → nested TWA construction needs the paper's "
                "loop normal form"
            )
        if isinstance(expr, xp.Label):
            return self._label_automaton(expr.name)
        if isinstance(expr, xp.TrueNode):
            return NestedTWA(1, 0, frozenset({0}), {}, ())
        if isinstance(expr, xp.Not):
            sub = self.compile_node(expr.operand)
            return self._guard_automaton([frozenset({(0, False)})], (sub,))
        if isinstance(expr, xp.And):
            left = self.compile_node(expr.left)
            right = self.compile_node(expr.right)
            return self._guard_automaton(
                [frozenset({(0, True), (1, True)})], (left, right)
            )
        if isinstance(expr, xp.Or):
            left = self.compile_node(expr.left)
            right = self.compile_node(expr.right)
            return self._guard_automaton(
                [frozenset({(0, True)}), frozenset({(1, True)})], (left, right)
            )
        if isinstance(expr, xp.Within):
            # At the subtree root, W φ and φ coincide (the invariant).
            return self.compile_node(expr.test)
        if isinstance(expr, xp.Exists):
            return self._exists_automaton(expr.path)
        raise UnsupportedForTwa(f"unknown node expression {expr!r}")

    # -- leaf automata ------------------------------------------------------

    def _label_automaton(self, label: str) -> NestedTWA:
        transitions = {
            (0, obs): frozenset({GuardedTransition(frozenset(), Move.STAY, 1)})
            for obs in _label_observations(self.alphabet, label)
        }
        return NestedTWA(2, 0, frozenset({1}), transitions, ())

    def _guard_automaton(
        self, guards: list[frozenset], subautomata: tuple[NestedTWA, ...]
    ) -> NestedTWA:
        options = frozenset(
            GuardedTransition(guard, Move.STAY, 1) for guard in guards
        )
        transitions = {
            (0, obs): options for obs in _all_observations(self.alphabet)
        }
        return NestedTWA(2, 0, frozenset({1}), transitions, subautomata)

    # -- path programs ---------------------------------------------------------

    def _exists_automaton(self, path: xp.PathExpr) -> NestedTWA:
        program = _PathProgram()
        subautomata: list[NestedTWA] = []
        self._compile_path(path, program, program.start, program.final, subautomata)
        transitions: dict[tuple[int, Observation], frozenset] = {}
        by_source: dict[int, set[GuardedTransition]] = {}
        for src, instruction, dst in program.edges:
            if isinstance(instruction, Move):
                option = GuardedTransition(frozenset(), instruction, dst)
            else:
                option = GuardedTransition(frozenset({instruction}), Move.STAY, dst)
            by_source.setdefault(src, set()).add(option)
        for src, options in by_source.items():
            for obs in _all_observations(self.alphabet):
                transitions[(src, obs)] = frozenset(options)
        return NestedTWA(
            program.num_states,
            program.start,
            frozenset({program.final}),
            transitions,
            tuple(subautomata),
        )

    def _compile_path(
        self,
        expr: xp.PathExpr,
        program: _PathProgram,
        src: int,
        dst: int,
        subautomata: list[NestedTWA],
    ) -> None:
        """Add edges realizing ``expr`` between program states src → dst."""
        if isinstance(expr, xp.Step):
            self._compile_step(expr.axis, program, src, dst)
        elif isinstance(expr, xp.Seq):
            middle = program.fresh()
            self._compile_path(expr.left, program, src, middle, subautomata)
            self._compile_path(expr.right, program, middle, dst, subautomata)
        elif isinstance(expr, xp.Union):
            self._compile_path(expr.left, program, src, dst, subautomata)
            self._compile_path(expr.right, program, src, dst, subautomata)
        elif isinstance(expr, xp.Star):
            hub = program.fresh()
            program.edges.append((src, Move.STAY, hub))
            self._compile_path(expr.path, program, hub, hub, subautomata)
            program.edges.append((hub, Move.STAY, dst))
        elif isinstance(expr, xp.Check):
            sub = self.compile_node(expr.test)
            index = len(subautomata)
            subautomata.append(sub)
            program.edges.append((src, (index, True), dst))
        elif isinstance(expr, xp.EmptyPath):
            pass  # no edge: the path never matches
        else:
            raise UnsupportedForTwa(f"unknown path expression {expr!r}")

    def _compile_step(
        self, axis: Axis, program: _PathProgram, src: int, dst: int
    ) -> None:
        if axis is Axis.SELF:
            program.edges.append((src, Move.STAY, dst))
        elif axis is Axis.CHILD:
            # Down to the first child, then any number of rights.  The RIGHT
            # loop lives on a private state so it cannot leak into other
            # paths sharing ``dst``.
            mid = program.fresh()
            program.edges.append((src, Move.DOWN_FIRST, mid))
            program.edges.append((mid, Move.RIGHT, mid))
            program.edges.append((mid, Move.STAY, dst))
        elif axis is Axis.DESCENDANT:
            # One or more child steps.
            hub = program.fresh()
            self._compile_step(Axis.CHILD, program, src, hub)
            self._compile_step(Axis.CHILD, program, hub, hub)
            program.edges.append((hub, Move.STAY, dst))
        elif axis is Axis.DESCENDANT_OR_SELF:
            program.edges.append((src, Move.STAY, dst))
            self._compile_step(Axis.DESCENDANT, program, src, dst)
        else:
            raise UnsupportedForTwa(
                f"axis {axis!r} is outside the downward fragment"
            )


def compile_node_expr(
    expr: xp.NodeExpr, alphabet: Sequence[str]
) -> NestedTWA:
    """Compile a downward node expression to a nested TWA over ``alphabet``.

    Invariant: the automaton accepts a tree iff the tree's root satisfies
    the expression — so ``automaton.accepts(tree, scope=v)`` decides
    ``v ⊨ expr`` for every node ``v``.
    """
    return _Compiler(tuple(alphabet)).compile_node(expr)


def compile_exists_path(
    path: xp.PathExpr, alphabet: Sequence[str]
) -> NestedTWA:
    """Compile ``⟨path⟩`` for a downward path expression."""
    return _Compiler(tuple(alphabet))._exists_automaton(path)
