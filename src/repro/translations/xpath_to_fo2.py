"""Core XPath inside two-variable first-order logic (Marx–de Rijke).

The semantic characterization of Core XPath cited throughout this
literature: node expressions have exactly the expressive power of FO²
formulas — first-order logic restricted to *two* variable names — over the
signature with ``child``, ``descendant``, ``right`` and
``following_sibling``.  The translation witnesses the easy inclusion
executably: rewrite into modal normal form (single-step diamonds, see
:mod:`repro.xpath.normal_forms`) and translate each diamond with the classic
variable-reuse trick::

    ⟨s[β]⟩ at x   ⇝   ∃y ( s(x,y) ∧ β(y) )
    ⟨s[β]⟩ at y   ⇝   ∃x ( s(y,x) ∧ β(x) )

so the two variable names ``x`` and ``y`` alternate down the modal nesting
and no third name is ever needed.  :func:`variables_used` verifies the
two-variable property syntactically; the test suite verifies semantic
agreement with the direct (many-variable) translation and the evaluator.
"""

from __future__ import annotations

from ..logic import ast as fo
from ..trees.axes import Axis
from ..xpath import ast as xp
from ..xpath.normal_forms import NotCoreXPath, to_modal_form

__all__ = ["xpath_to_fo2", "variables_used"]

_AXIS_ATOM = {
    Axis.CHILD: ("child", False),
    Axis.PARENT: ("child", True),
    Axis.RIGHT: ("right", False),
    Axis.LEFT: ("right", True),
    Axis.DESCENDANT: ("descendant", False),
    Axis.ANCESTOR: ("descendant", True),
    Axis.FOLLOWING_SIBLING: ("following_sibling", False),
    Axis.PRECEDING_SIBLING: ("following_sibling", True),
}


def xpath_to_fo2(expr: xp.NodeExpr, x: str = "x", y: str = "y") -> fo.Formula:
    """Translate a Core XPath node expression into an FO² formula ``φ(x)``.

    The output mentions no variable besides ``x`` and ``y`` (checked by
    :func:`variables_used`); raises
    :class:`~repro.xpath.normal_forms.NotCoreXPath` outside Core XPath.
    """
    if x == y:
        raise ValueError("the two variable names must differ")
    modal = to_modal_form(expr)
    return _translate(modal, x, y)


def _translate(expr: xp.NodeExpr, current: str, other: str) -> fo.Formula:
    if isinstance(expr, xp.Label):
        return fo.LabelAtom(expr.name, current)
    if isinstance(expr, xp.TrueNode):
        return fo.Eq(current, current)
    if isinstance(expr, xp.Not):
        return fo.Not(_translate(expr.operand, current, other))
    if isinstance(expr, xp.And):
        return fo.And(
            _translate(expr.left, current, other),
            _translate(expr.right, current, other),
        )
    if isinstance(expr, xp.Or):
        return fo.Or(
            _translate(expr.left, current, other),
            _translate(expr.right, current, other),
        )
    if isinstance(expr, xp.Exists):
        return _translate_diamond(expr.path, current, other)
    raise NotCoreXPath(f"{expr} survived modal normalization unexpectedly")


def _translate_diamond(path: xp.PathExpr, current: str, other: str) -> fo.Formula:
    """``⟨s⟩`` or ``⟨s[β]⟩`` at ``current`` — the variable-reuse step."""
    if isinstance(path, xp.Step):
        step, test = path, None
    elif (
        isinstance(path, xp.Seq)
        and isinstance(path.left, xp.Step)
        and isinstance(path.right, xp.Check)
    ):
        step, test = path.left, path.right.test
    else:  # pragma: no cover - modal form guarantees the shape
        raise NotCoreXPath(f"non-modal diamond {path}")
    if step.axis not in _AXIS_ATOM:
        raise NotCoreXPath(f"axis {step.axis!r} has no FO² atom")
    name, inverted = _AXIS_ATOM[step.axis]
    atom = (
        fo.Rel(name, other, current) if inverted else fo.Rel(name, current, other)
    )
    # The bound `other` shadows any outer use — that is the whole trick.
    body = atom
    if test is not None:
        body = fo.And(atom, _translate(test, other, current))
    return fo.Exists(other, body)


def variables_used(formula: fo.Formula) -> frozenset[str]:
    """All variable names occurring in the formula (free or bound)."""
    names: set[str] = set()
    for sub in formula.walk():
        if isinstance(sub, fo.LabelAtom):
            names.add(sub.var)
        elif isinstance(sub, (fo.Rel, fo.Eq)):
            names.update((sub.left, sub.right))
        elif isinstance(sub, (fo.Exists, fo.Forall)):
            names.add(sub.var)
        elif isinstance(sub, fo.TC):
            names.update((sub.x, sub.y, sub.source, sub.target))
    return frozenset(names)
