"""Translations between the paper's formalisms.

* :func:`xpath_to_mtc` — Regular XPath(W) → FO(MTC) (T1, complete);
* :func:`xpath_to_fo` — Core XPath → FO over the extended signature;
* :func:`mtc_to_node_expr` / :func:`mtc_to_path_expr` — FO(MTC) → Regular
  XPath on the compositional fragment (T2);
* :func:`compile_node_expr` — downward Regular XPath(W) → nested TWA (T3).
"""

from .mtc_to_xpath import (
    ANY_PAIR,
    UnsupportedFormula,
    mtc_to_node_expr,
    mtc_to_path_expr,
)
from .xpath_to_logic import (
    LogicTranslator,
    UnsupportedExpression,
    xpath_to_fo,
    xpath_to_mtc,
)
from .xpath_to_fo2 import variables_used, xpath_to_fo2
from .xpath_to_twa import UnsupportedForTwa, compile_exists_path, compile_node_expr

__all__ = [
    "ANY_PAIR",
    "LogicTranslator",
    "UnsupportedExpression",
    "UnsupportedForTwa",
    "UnsupportedFormula",
    "compile_exists_path",
    "compile_node_expr",
    "mtc_to_node_expr",
    "mtc_to_path_expr",
    "variables_used",
    "xpath_to_fo",
    "xpath_to_fo2",
    "xpath_to_mtc",
]
