"""FO(MTC) → Regular XPath: the paper's hard direction, on a fragment (T2).

The full theorem — *every* FO(MTC) formula with at most two free variables is
expressible in Regular XPath(W) — is the paper's central technical
contribution; its proof goes through a game-theoretic normal form whose
faithful implementation is out of scope (see the substitution table in
DESIGN.md).  What we implement is the *compositional core* of the
translation, which covers every formula built by the grammar

    φ(x,y) := R(x,y) | R(y,x) | x=y | φ ∨ φ
             | ψ(x) ∧ φ(x,y) ∧ ψ(y)                  (unary guards)
             | ∃z (φ₁(x,z) ∧ φ₂(z,y))                 (threaded join)
             | [TC_{u,v} φ(u,v)](x,y)  and its converse
             | cylinders ψ(x), ψ(y) over unary formulas

    ψ(x)  := P_a(x) | x=x | ¬ψ | ψ ∧ ψ | ψ ∨ ψ | ∃y φ(x,y) | sentences

with R ranging over child/right/descendant/following_sibling.  This fragment
is exactly the image of the forward translation for W-free expressions, so
round-tripping ``xpath → mtc → xpath`` exercises every constructor (the T2
test suite) — and everything it accepts is checked semantically against the
model checker.

Formulas outside the fragment raise :class:`UnsupportedFormula` with an
explanation (e.g. genuine path intersection, TC loops ``[TC φ](x,x)``, or
formulas needing the W normal form).
"""

from __future__ import annotations

from ..logic import ast as fo
from ..logic.transform import conjuncts, disjuncts, nnf, rename_free
from ..trees.axes import Axis
from ..xpath import ast as xp
from ..xpath.evaluator import converse

__all__ = ["UnsupportedFormula", "mtc_to_node_expr", "mtc_to_path_expr", "ANY_PAIR"]


class UnsupportedFormula(ValueError):
    """The formula falls outside the implemented compositional fragment."""


#: The universal relation: climb to any ancestor-or-self (in particular the
#: root), then descend to anything.
ANY_PAIR: xp.PathExpr = xp.Seq(
    xp.Step(Axis.ANCESTOR_OR_SELF), xp.Step(Axis.DESCENDANT_OR_SELF)
)

_REL_AXIS = {
    "child": Axis.CHILD,
    "right": Axis.RIGHT,
    "descendant": Axis.DESCENDANT,
    "following_sibling": Axis.FOLLOWING_SIBLING,
}
_REL_INVERSE_AXIS = {
    "child": Axis.PARENT,
    "right": Axis.LEFT,
    "descendant": Axis.ANCESTOR,
    "following_sibling": Axis.PRECEDING_SIBLING,
}


def mtc_to_node_expr(formula: fo.Formula, x: str = "x") -> xp.NodeExpr:
    """Translate a formula with free variables ⊆ {x} into a node expression."""
    free = fo.free_variables(formula)
    if not free <= {x}:
        raise UnsupportedFormula(
            f"free variables {sorted(free)} not contained in {{{x}}}"
        )
    return _node(nnf(formula), x)


def mtc_to_path_expr(
    formula: fo.Formula,
    x: str = "x",
    y: str = "y",
    allow_path_booleans: bool = False,
) -> xp.PathExpr:
    """Translate a formula with free variables ⊆ {x, y} into a path expression.

    With ``allow_path_booleans`` the target language gains the XPath 2.0
    operators, so conjunctions of binary formulas become path intersections
    and negated binaries become complements — a strictly larger fragment
    (Core XPath 2.0 path expressions are FO-complete, ten Cate–Marx).
    """
    if x == y:
        raise ValueError("x and y must be distinct variables")
    free = fo.free_variables(formula)
    if not free <= {x, y}:
        raise UnsupportedFormula(
            f"free variables {sorted(free)} not contained in {{{x}, {y}}}"
        )
    global _ALLOW_PATH_BOOLEANS
    previous = _ALLOW_PATH_BOOLEANS
    _ALLOW_PATH_BOOLEANS = allow_path_booleans
    try:
        return _path(nnf(formula), x, y)
    finally:
        _ALLOW_PATH_BOOLEANS = previous


_ALLOW_PATH_BOOLEANS = False


# ---------------------------------------------------------------------------
# Binary translation
# ---------------------------------------------------------------------------


def _path(formula: fo.Formula, x: str, y: str) -> xp.PathExpr:
    free = fo.free_variables(formula)
    # Cylinders: a formula not relating x and y denotes a product relation.
    if y not in free:
        return xp.Seq(xp.Check(_node(formula, x)), ANY_PAIR)
    if x not in free:
        return xp.Seq(ANY_PAIR, xp.Check(_node(formula, y)))

    if isinstance(formula, fo.Rel):
        if (formula.left, formula.right) == (x, y):
            return xp.Step(_REL_AXIS[formula.name])
        if (formula.left, formula.right) == (y, x):
            return xp.Step(_REL_INVERSE_AXIS[formula.name])
        raise UnsupportedFormula(f"relational atom {formula} not over ({x},{y})")
    if isinstance(formula, fo.Eq):
        return xp.SELF  # both orientations
    if isinstance(formula, fo.Or):
        parts = [_path(d, x, y) for d in disjuncts(formula)]
        result = parts[0]
        for part in parts[1:]:
            result = xp.Union(result, part)
        return result
    if isinstance(formula, fo.And):
        return _path_conjunction(list(conjuncts(formula)), x, y)
    if isinstance(formula, fo.Exists):
        return _path_exists(formula, x, y)
    if isinstance(formula, fo.TC):
        return _path_tc(formula, x, y)
    if isinstance(formula, fo.Not):
        if _ALLOW_PATH_BOOLEANS:
            return xp.Complement(_path(formula.operand, x, y))
        raise UnsupportedFormula(
            "negation of a genuinely binary formula needs path complementation "
            "(XPath 2.0 territory; pass allow_path_booleans=True)"
        )
    raise UnsupportedFormula(f"no binary translation for {formula}")


def _path_conjunction(parts: list[fo.Formula], x: str, y: str) -> xp.PathExpr:
    binary: list[fo.Formula] = []
    unary_x: list[fo.Formula] = []
    unary_y: list[fo.Formula] = []
    for part in parts:
        free = fo.free_variables(part)
        if x in free and y in free:
            binary.append(part)
        elif y in free:
            unary_y.append(part)
        else:
            unary_x.append(part)  # includes sentences: guards on x
    if len(binary) > 1 and not _ALLOW_PATH_BOOLEANS:
        raise UnsupportedFormula(
            "conjunction of several binary formulas is path intersection, "
            "not expressible in Regular XPath (pass allow_path_booleans=True "
            "to target Core XPath 2.0)"
        )
    if binary:
        core = _path(binary[0], x, y)
        for extra in binary[1:]:
            core = xp.Intersect(core, _path(extra, x, y))
    else:
        core = ANY_PAIR
    if unary_x:
        guard = _node(fo.big_and(unary_x), x)
        core = xp.Seq(xp.Check(guard), core)
    if unary_y:
        guard = _node(fo.big_and(unary_y), y)
        core = xp.Seq(core, xp.Check(guard))
    return core


def _path_exists(formula: fo.Exists, x: str, y: str) -> xp.PathExpr:
    z = formula.var
    body = formula.body
    if z in (x, y):
        # Shadowing: the bound z hides the free one; alpha-rename.
        fresh = f"{z}_inner"
        while fresh in fo.free_variables(body):
            fresh += "_"
        body = rename_free(body, {z: fresh})
        z = fresh
    parts = list(conjuncts(body))
    # Conjuncts not mentioning z commute with the quantifier: hoist them out
    # and let the conjunction translator place them as guards.
    outer = [part for part in parts if z not in fo.free_variables(part)]
    if outer:
        inner = [part for part in parts if z in fo.free_variables(part)]
        rebuilt = fo.Exists(z, fo.big_and(inner)) if inner else fo.TRUE
        return _path_conjunction(outer + [rebuilt], x, y)
    first: list[fo.Formula] = []  # free ⊆ {x, z}
    second: list[fo.Formula] = []  # free ⊆ {z, y}
    for part in parts:
        free = fo.free_variables(part)
        if y in free and x in free:
            raise UnsupportedFormula(
                f"conjunct {part} relates {x} and {y} across the ∃{z} join"
            )
        if y in free:
            second.append(part)
        elif x in free:
            first.append(part)
        else:
            # Unary in z: attach to the first leg (it becomes a mid-test).
            first.append(part)
    left = _path(fo.big_and(first), x, z) if first else ANY_PAIR
    right = _path(fo.big_and(second), z, y) if second else ANY_PAIR
    return xp.Seq(left, right)


def _path_tc(formula: fo.TC, x: str, y: str) -> xp.PathExpr:
    step = _path(formula.body, formula.x, formula.y)
    if (formula.source, formula.target) == (x, y):
        return xp.plus(step)
    if (formula.source, formula.target) == (y, x):
        return converse(xp.plus(step))
    raise UnsupportedFormula(
        f"TC endpoints ({formula.source},{formula.target}) are not ({x},{y})"
    )


# ---------------------------------------------------------------------------
# Unary translation
# ---------------------------------------------------------------------------


def _node(formula: fo.Formula, x: str) -> xp.NodeExpr:
    free = fo.free_variables(formula)
    if not free:
        return _sentence(formula)
    if isinstance(formula, fo.LabelAtom):
        return xp.Label(formula.label)
    if isinstance(formula, fo.Eq):
        if formula.left == formula.right:
            return xp.TRUE
        raise UnsupportedFormula(f"equality {formula} is not unary in {x}")
    if isinstance(formula, fo.Rel):
        # R(x, x) for our strict/irreflexive-by-structure relations is false.
        if formula.left == formula.right == x:
            return xp.FALSE
        raise UnsupportedFormula(f"relational atom {formula} is not unary in {x}")
    if isinstance(formula, fo.Not):
        return xp.Not(_node(formula.operand, x))
    if isinstance(formula, fo.And):
        return xp.And(_node(formula.left, x), _node(formula.right, x))
    if isinstance(formula, fo.Or):
        return xp.Or(_node(formula.left, x), _node(formula.right, x))
    if isinstance(formula, fo.Exists):
        z = formula.var
        body = formula.body
        if z == x:
            raise AssertionError("shadowed quantifier should have been a sentence")
        return xp.Exists(_path(body, x, z))
    if isinstance(formula, fo.Forall):
        return xp.Not(_node(fo.Exists(formula.var, nnf(fo.Not(formula.body))), x))
    if isinstance(formula, fo.TC):
        if formula.source == formula.target:
            raise UnsupportedFormula(
                "TC loops [TC φ](x,x) need the paper's W normal form"
            )
        raise UnsupportedFormula(f"TC formula {formula} is not unary in {x}")
    raise UnsupportedFormula(f"no unary translation for {formula}")


def _sentence(formula: fo.Formula) -> xp.NodeExpr:
    """A sentence as a node expression: all nodes if true, none otherwise."""
    if isinstance(formula, fo.TrueFormula):
        return xp.TRUE
    if isinstance(formula, fo.Eq) and formula.left == formula.right:
        return xp.TRUE
    if isinstance(formula, fo.Not):
        return xp.Not(_sentence(formula.operand))
    if isinstance(formula, fo.And):
        return xp.And(_sentence(formula.left), _sentence(formula.right))
    if isinstance(formula, fo.Or):
        return xp.Or(_sentence(formula.left), _sentence(formula.right))
    if isinstance(formula, fo.Exists):
        # ∃z ψ(z) holds globally iff from anywhere we can reach a ψ-node.
        inner = _node(formula.body, formula.var)
        return xp.Exists(xp.Seq(ANY_PAIR, xp.Check(inner)))
    if isinstance(formula, fo.Forall):
        return xp.Not(_sentence(fo.Exists(formula.var, nnf(fo.Not(formula.body)))))
    raise UnsupportedFormula(f"no sentence translation for {formula}")
