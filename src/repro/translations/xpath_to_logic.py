"""Translating XPath dialects into (transitive-closure) first-order logic.

Two translations live here, sharing one compositional engine:

* :func:`xpath_to_mtc` — **the easy direction of the paper's main theorem
  (T1)**: every Regular XPath(W) path expression ``p`` becomes an FO(MTC)
  formula ``φ_p(x, y)`` over the signature ``{child, right, labels}``, and
  every node expression becomes a formula ``ψ(x)``.  Kleene star maps to the
  TC operator; the ``W`` operator maps to *relativisation* of all quantifiers
  (and TC steps) to the subtree of the current node, with the subtree guard
  itself expressed via TC over ``child``.

* :func:`xpath_to_fo` — the classical Core XPath ⊆ FO embedding, over the
  *extended* signature with ``descendant`` and ``following_sibling``
  primitive (Core XPath's closures only close single axes, so plain FO over
  the extended signature suffices; general star raises
  :class:`UnsupportedExpression`).

Both produce formulas whose bound variables are globally fresh, which makes
the ``W`` relativisation capture-free by construction.

Correctness is validated empirically (exhaustive + random corpora) by the
T1 test suite: ``[[p]]`` computed by the XPath engine must equal the pairs
defined by ``φ_p`` under the FO(MTC) model checker.
"""

from __future__ import annotations

from ..logic import ast as fo
from ..trees.axes import Axis
from ..xpath import ast as xp

__all__ = [
    "UnsupportedExpression",
    "xpath_to_mtc",
    "xpath_to_fo",
    "LogicTranslator",
    "conditional_step",
]


def conditional_step(
    path: "xp.PathExpr",
) -> "tuple[Axis, xp.NodeExpr | None, xp.NodeExpr | None] | None":
    """Decompose a path into a *conditional step* ``?α / s / ?β``.

    Returns ``(axis, α, β)`` when the path is a composition of tests around
    exactly one primitive axis step (either test side may be absent), and
    None otherwise.  These are the steps whose closures Conditional XPath
    (and hence FO) can express.
    """
    from ..xpath.rewrite import seq_factors

    factors = list(seq_factors(path))
    step_positions = [
        i for i, factor in enumerate(factors) if not isinstance(factor, xp.Check)
    ]
    if len(step_positions) != 1:
        return None
    position = step_positions[0]
    step = factors[position]
    if not isinstance(step, xp.Step) or step.axis not in (
        Axis.CHILD,
        Axis.PARENT,
        Axis.RIGHT,
        Axis.LEFT,
    ):
        return None
    before = [factor.test for factor in factors[:position]]  # type: ignore[union-attr]
    after = [factor.test for factor in factors[position + 1 :]]  # type: ignore[union-attr]
    alpha = _and_all(before)
    beta = _and_all(after)
    return step.axis, alpha, beta


def _and_all(tests: "list[xp.NodeExpr]") -> "xp.NodeExpr | None":
    if not tests:
        return None
    result = tests[0]
    for test in tests[1:]:
        result = xp.And(result, test)
    return result


class UnsupportedExpression(ValueError):
    """The expression falls outside the fragment this translation covers."""


class LogicTranslator:
    """Compositional XPath → logic translation.

    With ``use_tc=True`` the target is FO(MTC) over ``{child, right}``; with
    ``use_tc=False`` the target is FO over the extended signature and only
    Core XPath is accepted.
    """

    def __init__(self, use_tc: bool = True):
        self.use_tc = use_tc
        self._counter = 0

    # -- public API -------------------------------------------------------

    def translate_path(self, expr: xp.PathExpr, x: str, y: str) -> fo.Formula:
        """``φ_expr(x, y)``: the binary query of a path expression."""
        return self._path(expr, x, y)

    def translate_node(self, expr: xp.NodeExpr, x: str) -> fo.Formula:
        """``ψ_expr(x)``: the unary query of a node expression."""
        return self._node(expr, x)

    # -- plumbing -------------------------------------------------------------

    def _fresh(self) -> str:
        self._counter += 1
        return f"z{self._counter}"

    def _tc_axis(self, base: str, x: str, y: str, reflexive: bool) -> fo.Formula:
        u, v = self._fresh(), self._fresh()
        body = fo.Rel(base, u, v)
        if reflexive:
            return fo.rtc(u, v, body, x, y)
        return fo.TC(u, v, body, x, y)

    # -- axes ---------------------------------------------------------------

    def _axis(self, axis: Axis, x: str, y: str) -> fo.Formula:
        if axis is Axis.SELF:
            return fo.Eq(x, y)
        if axis is Axis.CHILD:
            return fo.Rel("child", x, y)
        if axis is Axis.PARENT:
            return fo.Rel("child", y, x)
        if axis is Axis.RIGHT:
            return fo.Rel("right", x, y)
        if axis is Axis.LEFT:
            return fo.Rel("right", y, x)
        if axis is Axis.DESCENDANT:
            return self._closure("child", x, y, reflexive=False)
        if axis is Axis.ANCESTOR:
            return self._closure("child", y, x, reflexive=False)
        if axis is Axis.DESCENDANT_OR_SELF:
            return self._closure("child", x, y, reflexive=True)
        if axis is Axis.ANCESTOR_OR_SELF:
            return self._closure("child", y, x, reflexive=True)
        if axis is Axis.FOLLOWING_SIBLING:
            return self._closure("right", x, y, reflexive=False)
        if axis is Axis.PRECEDING_SIBLING:
            return self._closure("right", y, x, reflexive=False)
        if axis is Axis.FOLLOWING:
            return self._following(x, y)
        if axis is Axis.PRECEDING:
            return self._following(y, x)
        raise UnsupportedExpression(f"axis {axis!r} has no translation")

    def _closure(self, base: str, x: str, y: str, reflexive: bool) -> fo.Formula:
        if self.use_tc:
            return self._tc_axis(base, x, y, reflexive)
        name = "descendant" if base == "child" else "following_sibling"
        strict = fo.Rel(name, x, y)
        if reflexive:
            return fo.Or(fo.Eq(x, y), strict)
        return strict

    def _following(self, x: str, y: str) -> fo.Formula:
        # y follows x: some ancestor-or-self of x has a strictly later
        # sibling that is an ancestor-or-self of y.
        z, w = self._fresh(), self._fresh()
        return fo.exists_many(
            [z, w],
            fo.big_and(
                [
                    self._closure("child", z, x, reflexive=True),
                    self._closure("right", z, w, reflexive=False),
                    self._closure("child", w, y, reflexive=True),
                ]
            ),
        )

    # -- path expressions -----------------------------------------------------

    def _path(self, expr: xp.PathExpr, x: str, y: str) -> fo.Formula:
        if isinstance(expr, xp.Step):
            return self._axis(expr.axis, x, y)
        if isinstance(expr, xp.Seq):
            z = self._fresh()
            return fo.Exists(
                z, fo.And(self._path(expr.left, x, z), self._path(expr.right, z, y))
            )
        if isinstance(expr, xp.Union):
            return fo.Or(self._path(expr.left, x, y), self._path(expr.right, x, y))
        if isinstance(expr, xp.Star):
            if not self.use_tc:
                return self._conditional_star(expr, x, y)
            u, v = self._fresh(), self._fresh()
            return fo.rtc(u, v, self._path(expr.path, u, v), x, y)
        if isinstance(expr, xp.Check):
            return fo.And(fo.Eq(x, y), self._node(expr.test, x))
        if isinstance(expr, xp.EmptyPath):
            return fo.And(fo.And(fo.Eq(x, x), fo.Eq(y, y)), fo.FALSE)
        if isinstance(expr, xp.Intersect):
            return fo.And(self._path(expr.left, x, y), self._path(expr.right, x, y))
        if isinstance(expr, xp.Complement):
            # Pad with trivial equalities so both variables stay free.
            return fo.big_and(
                [fo.Eq(x, x), fo.Eq(y, y), fo.Not(self._path(expr.path, x, y))]
            )
        raise UnsupportedExpression(f"unknown path expression {expr!r}")

    # -- conditional steps: Marx's Conditional XPath inside FO --------------------

    def _conditional_star(self, expr: xp.Star, x: str, y: str) -> fo.Formula:
        """Translate ``(?α / s / ?β)*`` into plain FO (the *until* pattern).

        Conditional XPath (Core XPath plus conditional steps ``(s[φ])+``) is
        exactly first-order complete on ordered trees (Marx); the encoding:
        ``x (?α/s/?β)+ y`` iff y lies strictly ``s``-beyond x, α holds at x
        and at everything strictly between, and β holds at y and at
        everything strictly between — expressible because the chain between
        two ``s``-related nodes is unique.
        """
        decomposed = conditional_step(expr.path)
        if decomposed is None:
            raise UnsupportedExpression(
                "only conditional steps (tests around one primitive axis) "
                "are star-able in FO; general star requires xpath_to_mtc"
            )
        axis, alpha, beta = decomposed
        z = self._fresh()
        closure = self._strict_chain(axis, x, y)
        between = fo.And(self._strict_chain(axis, x, z), self._strict_chain(axis, z, y))
        body: list[fo.Formula] = [closure]
        invariant: list[fo.Formula] = []
        if alpha is not None:
            body.append(self._node(alpha, x))
            invariant.append(self._node(alpha, z))
        if beta is not None:
            body.append(self._node(beta, y))
            invariant.append(self._node(beta, z))
        if invariant:
            body.append(fo.Forall(z, fo.implies(between, fo.big_and(invariant))))
        return fo.Or(fo.Eq(x, y), fo.big_and(body))

    def _strict_chain(self, axis: Axis, x: str, y: str) -> fo.Formula:
        """The strict transitive closure of a primitive axis, as an atom of
        the extended signature."""
        if axis is Axis.CHILD:
            return fo.Rel("descendant", x, y)
        if axis is Axis.PARENT:
            return fo.Rel("descendant", y, x)
        if axis is Axis.RIGHT:
            return fo.Rel("following_sibling", x, y)
        if axis is Axis.LEFT:
            return fo.Rel("following_sibling", y, x)
        raise UnsupportedExpression(f"axis {axis!r} is not a primitive chain axis")

    # -- node expressions -----------------------------------------------------

    def _node(self, expr: xp.NodeExpr, x: str) -> fo.Formula:
        if isinstance(expr, xp.Label):
            return fo.LabelAtom(expr.name, x)
        if isinstance(expr, xp.TrueNode):
            return fo.Eq(x, x)
        if isinstance(expr, xp.Not):
            return fo.And(fo.Eq(x, x), fo.Not(self._node(expr.operand, x)))
        if isinstance(expr, xp.And):
            return fo.And(self._node(expr.left, x), self._node(expr.right, x))
        if isinstance(expr, xp.Or):
            return fo.Or(self._node(expr.left, x), self._node(expr.right, x))
        if isinstance(expr, xp.Exists):
            y = self._fresh()
            return fo.Exists(y, self._path(expr.path, x, y))
        if isinstance(expr, xp.Within):
            if not self.use_tc:
                raise UnsupportedExpression(
                    "the W operator requires FO(MTC); use xpath_to_mtc"
                )
            inner = self._node(expr.test, x)
            return self._relativize(inner, x)
        raise UnsupportedExpression(f"unknown node expression {expr!r}")

    # -- the W relativisation -----------------------------------------------------

    def _in_subtree(self, root: str, var: str) -> fo.Formula:
        """``var`` lies in the subtree of ``root`` (descendant-or-self)."""
        return self._closure("child", root, var, reflexive=True)

    def _relativize(self, formula: fo.Formula, root: str) -> fo.Formula:
        """Relativize all quantifiers (and TC steps) to the subtree of ``root``.

        Sound because bound variables are globally fresh, so ``root`` cannot
        be captured.
        """
        if isinstance(
            formula, (fo.LabelAtom, fo.Rel, fo.Eq, fo.TrueFormula)
        ):
            return formula
        if isinstance(formula, fo.Not):
            return fo.Not(self._relativize(formula.operand, root))
        if isinstance(formula, fo.And):
            return fo.And(
                self._relativize(formula.left, root),
                self._relativize(formula.right, root),
            )
        if isinstance(formula, fo.Or):
            return fo.Or(
                self._relativize(formula.left, root),
                self._relativize(formula.right, root),
            )
        if isinstance(formula, fo.Exists):
            return fo.Exists(
                formula.var,
                fo.And(
                    self._in_subtree(root, formula.var),
                    self._relativize(formula.body, root),
                ),
            )
        if isinstance(formula, fo.Forall):
            return fo.Forall(
                formula.var,
                fo.implies(
                    self._in_subtree(root, formula.var),
                    self._relativize(formula.body, root),
                ),
            )
        if isinstance(formula, fo.TC):
            guarded = fo.big_and(
                [
                    self._in_subtree(root, formula.x),
                    self._in_subtree(root, formula.y),
                    self._relativize(formula.body, root),
                ]
            )
            return fo.TC(formula.x, formula.y, guarded, formula.source, formula.target)
        raise UnsupportedExpression(f"cannot relativize {formula!r}")


def xpath_to_mtc(
    expr: "xp.PathExpr | xp.NodeExpr", x: str = "x", y: str = "y"
) -> fo.Formula:
    """Regular XPath(W) → FO(MTC) (the paper's T1 direction).

    Path expressions yield ``φ(x, y)``; node expressions yield ``ψ(x)``.
    """
    translator = LogicTranslator(use_tc=True)
    if isinstance(expr, xp.PathExpr):
        return translator.translate_path(expr, x, y)
    return translator.translate_node(expr, x)


def xpath_to_fo(
    expr: "xp.PathExpr | xp.NodeExpr", x: str = "x", y: str = "y"
) -> fo.Formula:
    """Core XPath → FO over ``{child, right, descendant, following_sibling}``."""
    translator = LogicTranslator(use_tc=False)
    if isinstance(expr, xp.PathExpr):
        return translator.translate_path(expr, x, y)
    return translator.translate_node(expr, x)
