"""Monadic second-order logic on trees — the small-scale yardstick.

MSO is the upper bound of the paper's expressiveness picture: the regular
tree languages.  Theorem T4/T5 say FO(MTC) (= Regular XPath(W) = nested TWA)
sits *strictly below* MSO.  For machine-checkable comparisons we need to
evaluate MSO on concrete trees; set quantifiers make this exponential, so
this checker enumerates subsets directly and is intended for trees of, say,
≤ 12 nodes.  Language-level (all-trees) reasoning about MSO-definable sets
goes through hedge automata instead (:mod:`repro.automata.hedge`).

The syntax extends :mod:`repro.logic.ast` with set variables: ``In(x, X)``
membership atoms and ``ExistsSet`` / ``ForallSet`` quantifiers.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import chain, combinations

from ..trees.tree import Tree
from . import ast

__all__ = ["In", "ExistsSet", "ForallSet", "mso_holds", "mso_node_set"]


@dataclass(frozen=True)
class In(ast.Formula):
    """Membership atom ``var ∈ set_var``."""

    var: str
    set_var: str

    def children(self) -> tuple[ast.Formula, ...]:
        return ()


@dataclass(frozen=True)
class ExistsSet(ast.Formula):
    set_var: str
    body: ast.Formula

    def children(self) -> tuple[ast.Formula, ...]:
        return (self.body,)


@dataclass(frozen=True)
class ForallSet(ast.Formula):
    set_var: str
    body: ast.Formula

    def children(self) -> tuple[ast.Formula, ...]:
        return (self.body,)


def _subsets(universe: range):
    nodes = list(universe)
    return chain.from_iterable(
        combinations(nodes, k) for k in range(len(nodes) + 1)
    )


def mso_holds(
    tree: Tree,
    formula: ast.Formula,
    env: dict[str, int] | None = None,
    set_env: dict[str, frozenset[int]] | None = None,
) -> bool:
    """Truth of an MSO formula on ``tree`` (exponential in set quantifiers)."""
    env = dict(env or {})
    set_env = dict(set_env or {})
    return _eval(tree, formula, env, set_env)


def mso_node_set(tree: Tree, formula: ast.Formula, var: str) -> set[int]:
    """``{n | tree ⊨ formula[var := n]}`` for one free first-order variable."""
    return {
        n for n in tree.node_ids if mso_holds(tree, formula, {var: n})
    }


def _eval(
    tree: Tree,
    formula: ast.Formula,
    env: dict[str, int],
    set_env: dict[str, frozenset[int]],
) -> bool:
    if isinstance(formula, In):
        return env[formula.var] in set_env[formula.set_var]
    if isinstance(formula, ExistsSet):
        return any(
            _eval(tree, formula.body, env, {**set_env, formula.set_var: frozenset(s)})
            for s in _subsets(tree.node_ids)
        )
    if isinstance(formula, ForallSet):
        return all(
            _eval(tree, formula.body, env, {**set_env, formula.set_var: frozenset(s)})
            for s in _subsets(tree.node_ids)
        )
    if isinstance(formula, ast.LabelAtom):
        return tree.labels[env[formula.var]] == formula.label
    if isinstance(formula, ast.Rel):
        a, b = env[formula.left], env[formula.right]
        if formula.name == "child":
            return tree.parent[b] == a
        if formula.name == "right":
            return tree.next_sibling[a] == b
        if formula.name == "descendant":
            return tree.is_descendant(b, a)
        if formula.name == "following_sibling":
            return tree.parent[a] >= 0 and tree.parent[a] == tree.parent[b] and a < b
        raise ValueError(f"unknown relation {formula.name!r}")
    if isinstance(formula, ast.Eq):
        return env[formula.left] == env[formula.right]
    if isinstance(formula, ast.TrueFormula):
        return True
    if isinstance(formula, ast.Not):
        return not _eval(tree, formula.operand, env, set_env)
    if isinstance(formula, ast.And):
        return _eval(tree, formula.left, env, set_env) and _eval(
            tree, formula.right, env, set_env
        )
    if isinstance(formula, ast.Or):
        return _eval(tree, formula.left, env, set_env) or _eval(
            tree, formula.right, env, set_env
        )
    if isinstance(formula, ast.Exists):
        return any(
            _eval(tree, formula.body, {**env, formula.var: n}, set_env)
            for n in tree.node_ids
        )
    if isinstance(formula, ast.Forall):
        return all(
            _eval(tree, formula.body, {**env, formula.var: n}, set_env)
            for n in tree.node_ids
        )
    if isinstance(formula, ast.TC):
        return _eval_tc(tree, formula, env, set_env)
    raise TypeError(f"unknown formula: {formula!r}")


def _eval_tc(
    tree: Tree,
    formula: ast.TC,
    env: dict[str, int],
    set_env: dict[str, frozenset[int]],
) -> bool:
    source = env[formula.source]
    target = env[formula.target]
    reached: set[int] = set()
    frontier = [source]
    first = True
    while frontier:
        nxt: list[int] = []
        for a in frontier:
            for b in tree.node_ids:
                if b in reached:
                    continue
                if _eval(
                    tree, formula.body, {**env, formula.x: a, formula.y: b}, set_env
                ):
                    reached.add(b)
                    nxt.append(b)
        frontier = nxt
        first = False
    return target in reached
