"""Formula transformations: capture-avoiding renaming and flattening."""

from __future__ import annotations

from . import ast

__all__ = ["rename_free", "conjuncts", "disjuncts"]


def rename_free(formula: ast.Formula, mapping: dict[str, str]) -> ast.Formula:
    """Rename free variables, avoiding capture by renaming binders on clash.

    ``mapping`` sends old free-variable names to new names.  Binders whose
    bound variable collides with a *target* name are alpha-renamed to a fresh
    name first.
    """
    if not mapping:
        return formula
    return _rename(formula, mapping, set(mapping.values()) | set(mapping))


def _freshen(var: str, forbidden: set[str]) -> str:
    candidate = var
    i = 0
    while candidate in forbidden:
        i += 1
        candidate = f"{var}_{i}"
    return candidate


def _rename(
    formula: ast.Formula, mapping: dict[str, str], forbidden: set[str]
) -> ast.Formula:
    get = lambda v: mapping.get(v, v)  # noqa: E731 - tiny local accessor
    if isinstance(formula, ast.LabelAtom):
        return ast.LabelAtom(formula.label, get(formula.var))
    if isinstance(formula, ast.Rel):
        return ast.Rel(formula.name, get(formula.left), get(formula.right))
    if isinstance(formula, ast.Eq):
        return ast.Eq(get(formula.left), get(formula.right))
    if isinstance(formula, ast.TrueFormula):
        return formula
    if isinstance(formula, ast.Not):
        return ast.Not(_rename(formula.operand, mapping, forbidden))
    if isinstance(formula, ast.And):
        return ast.And(
            _rename(formula.left, mapping, forbidden),
            _rename(formula.right, mapping, forbidden),
        )
    if isinstance(formula, ast.Or):
        return ast.Or(
            _rename(formula.left, mapping, forbidden),
            _rename(formula.right, mapping, forbidden),
        )
    if isinstance(formula, (ast.Exists, ast.Forall)):
        ctor = type(formula)
        var = formula.var
        body = formula.body
        inner_mapping = {k: v for k, v in mapping.items() if k != var}
        if var in set(inner_mapping.values()):
            fresh = _freshen(var, forbidden | set(ast.free_variables(body)))
            body = _rename(body, {var: fresh}, forbidden | {fresh})
            var = fresh
        return ctor(var, _rename(body, inner_mapping, forbidden | {var}))
    if isinstance(formula, ast.TC):
        bound = {formula.x, formula.y}
        inner_mapping = {k: v for k, v in mapping.items() if k not in bound}
        x, y, body = formula.x, formula.y, formula.body
        clash = bound & set(inner_mapping.values())
        if clash:
            renames = {}
            avoid = forbidden | set(ast.free_variables(body))
            for var in sorted(clash):
                renames[var] = _freshen(var, avoid)
                avoid.add(renames[var])
            body = _rename(body, renames, avoid)
            x = renames.get(x, x)
            y = renames.get(y, y)
        return ast.TC(
            x,
            y,
            _rename(body, inner_mapping, forbidden | {x, y}),
            get(formula.source),
            get(formula.target),
        )
    raise TypeError(f"unknown formula: {formula!r}")


def conjuncts(formula: ast.Formula):
    """Flatten nested conjunctions."""
    if isinstance(formula, ast.And):
        yield from conjuncts(formula.left)
        yield from conjuncts(formula.right)
    else:
        yield formula


def disjuncts(formula: ast.Formula):
    """Flatten nested disjunctions."""
    if isinstance(formula, ast.Or):
        yield from disjuncts(formula.left)
        yield from disjuncts(formula.right)
    else:
        yield formula


def nnf(formula: ast.Formula) -> ast.Formula:
    """Negation normal form: push ¬ through ∧, ∨, ∃, ∀ and double negation.

    Negations remaining in the result sit directly on atoms or on TC
    subformulas (TC has no dual in the language).
    """
    if isinstance(formula, ast.Not):
        inner = formula.operand
        if isinstance(inner, ast.Not):
            return nnf(inner.operand)
        if isinstance(inner, ast.And):
            return ast.Or(nnf(ast.Not(inner.left)), nnf(ast.Not(inner.right)))
        if isinstance(inner, ast.Or):
            return ast.And(nnf(ast.Not(inner.left)), nnf(ast.Not(inner.right)))
        if isinstance(inner, ast.Exists):
            return ast.Forall(inner.var, nnf(ast.Not(inner.body)))
        if isinstance(inner, ast.Forall):
            return ast.Exists(inner.var, nnf(ast.Not(inner.body)))
        if isinstance(inner, ast.TC):
            return ast.Not(
                ast.TC(inner.x, inner.y, nnf(inner.body), inner.source, inner.target)
            )
        return ast.Not(nnf(inner))
    if isinstance(formula, ast.And):
        return ast.And(nnf(formula.left), nnf(formula.right))
    if isinstance(formula, ast.Or):
        return ast.Or(nnf(formula.left), nnf(formula.right))
    if isinstance(formula, ast.Exists):
        return ast.Exists(formula.var, nnf(formula.body))
    if isinstance(formula, ast.Forall):
        return ast.Forall(formula.var, nnf(formula.body))
    if isinstance(formula, ast.TC):
        return ast.TC(formula.x, formula.y, nnf(formula.body), formula.source, formula.target)
    return formula
