"""First-order logic with monadic transitive closure (and MSO) on trees.

The logic side of the paper's main equivalence.  Public surface: the formula
AST and builders (:mod:`repro.logic.ast`), the parser, the relational model
checker, the EF game engine, and the small-scale MSO checker.
"""

from . import ast
from .ef_games import EFGame, distinguishing_rank, duplicator_wins
from .engine import BitsetModelChecker, BitsetTable
from .modelcheck import (
    CHECKER_BACKENDS,
    ModelChecker,
    TableModelChecker,
    formula_node_set,
    formula_pairs,
    holds,
    satisfying_table,
)
from .mso import ExistsSet, ForallSet, In, mso_holds, mso_node_set
from .parser import FormulaSyntaxError, parse_formula
from .random_formulas import FormulaSampler, random_formula
from .tables import Table
from .unparse import unparse_formula

__all__ = [
    "BitsetModelChecker",
    "BitsetTable",
    "CHECKER_BACKENDS",
    "EFGame",
    "ExistsSet",
    "ForallSet",
    "FormulaSyntaxError",
    "In",
    "ModelChecker",
    "Table",
    "TableModelChecker",
    "ast",
    "distinguishing_rank",
    "duplicator_wins",
    "formula_node_set",
    "formula_pairs",
    "holds",
    "mso_holds",
    "mso_node_set",
    "FormulaSampler",
    "parse_formula",
    "random_formula",
    "satisfying_table",
    "unparse_formula",
]
