"""Random FO(MTC) formulas, for property-based cross-validation.

The relational model checker (:mod:`repro.logic.modelcheck`) and the naive
assignment-enumeration checker inside :mod:`repro.logic.mso` are fully
independent implementations of the same semantics; fuzzing them against each
other on random formulas × random trees is the logic-side analogue of the
two-evaluator anchor on the XPath side.
"""

from __future__ import annotations

import random
from typing import Sequence

from . import ast

__all__ = ["FormulaSampler", "random_formula"]


class FormulaSampler:
    """Samples random FO(MTC) formulas with a given set of free variables."""

    def __init__(
        self,
        alphabet: Sequence[str] = ("a", "b"),
        rng: random.Random | None = None,
        allow_tc: bool = True,
    ):
        self.alphabet = tuple(alphabet)
        self.rng = rng or random.Random()
        self.allow_tc = allow_tc
        self._counter = 0

    def _fresh(self) -> str:
        self._counter += 1
        return f"w{self._counter}"

    def formula(self, free: Sequence[str], budget: int = 8) -> ast.Formula:
        """A random formula whose free variables are ⊆ ``free``."""
        free = list(free)
        if not free:
            fresh = self._fresh()
            return ast.Exists(fresh, self.formula([fresh], budget - 1))
        return self._formula(free, max(1, budget))

    def _atom(self, free: list[str]) -> ast.Formula:
        rng = self.rng
        kind = rng.choice(["label", "rel", "eq", "true"])
        if kind == "label":
            return ast.LabelAtom(rng.choice(self.alphabet), rng.choice(free))
        if kind == "rel":
            return ast.Rel(
                rng.choice(ast.RELATION_NAMES), rng.choice(free), rng.choice(free)
            )
        if kind == "eq":
            return ast.Eq(rng.choice(free), rng.choice(free))
        return ast.TRUE

    def _formula(self, free: list[str], budget: int) -> ast.Formula:
        rng = self.rng
        if budget <= 1:
            return self._atom(free)
        choices = ["atom", "not", "and", "or", "exists", "forall"]
        if self.allow_tc:
            choices.append("tc")
        kind = rng.choice(choices)
        if kind == "atom":
            return self._atom(free)
        if kind == "not":
            return ast.Not(self._formula(free, budget - 1))
        if kind in ("and", "or"):
            split = rng.randint(1, budget - 1)
            left = self._formula(free, split)
            right = self._formula(free, budget - split)
            return ast.And(left, right) if kind == "and" else ast.Or(left, right)
        if kind in ("exists", "forall"):
            var = self._fresh()
            body = self._formula(free + [var], budget - 1)
            return ast.Exists(var, body) if kind == "exists" else ast.Forall(var, body)
        # tc
        u, v = self._fresh(), self._fresh()
        body = self._formula([u, v] + free[:1], max(1, budget - 2))
        source = self.rng.choice(free)
        target = self.rng.choice(free)
        return ast.TC(u, v, body, source, target)


def random_formula(
    free: Sequence[str],
    budget: int = 8,
    alphabet: Sequence[str] = ("a", "b"),
    rng: random.Random | None = None,
    allow_tc: bool = True,
) -> ast.Formula:
    """One-shot random FO(MTC) formula with free variables ⊆ ``free``."""
    return FormulaSampler(alphabet, rng, allow_tc).formula(free, budget)
