"""The bitset model-checking backend: columnar tables + semi-naive TC.

This package is the performance engine behind
``ModelChecker(tree, backend="bitset")``, mirroring the XPath bitset engine
(:mod:`repro.xpath.engine`):

* :mod:`repro.logic.engine.bittable` — relations as columnar tables whose
  last column is a big-int bitmask over preorder node ids (unary relations
  and booleans collapse to a single mask), with join / complement /
  projection / union as mask arithmetic;
* :mod:`repro.logic.engine.checker` — the bottom-up evaluator over the
  shared per-tree :class:`repro.trees.index.TreeIndex`, with ``[TC]``
  evaluated as batched semi-naive frontier sweeps instead of a
  tuple-at-a-time BFS.

See DESIGN.md ("The bitset model checker") and
``benchmarks/compare_backends.py`` for the measured speedups over the
row-wise ``table`` backend.
"""

from .bittable import BitsetTable
from .checker import BitsetModelChecker, mask_closure

__all__ = ["BitsetModelChecker", "BitsetTable", "mask_closure"]
