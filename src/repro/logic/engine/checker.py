"""The bitset FO(MTC) model-checking backend.

Mirrors the design of the XPath bitset engine (:mod:`repro.xpath.engine`):
evaluation is still database-style bottom-up — every subformula becomes the
relation of its satisfying assignments — but relations are columnar
:class:`~repro.logic.engine.bittable.BitsetTable` masks instead of frozensets
of tuples, and the structural atoms come straight from the shared per-tree
:class:`~repro.trees.index.TreeIndex`:

* label atoms are one dict lookup into the per-label masks;
* ``child``/``right``/``descendant``/``following_sibling`` atoms are the
  index's per-source target-mask maps (delta-shift / subtree-interval
  derived, cached per tree);
* ``∧`` is a bucketed mask join, ``¬`` is mask complement, ``∃`` is a
  column drop, ``∨`` a per-bucket OR;
* ``[TC]`` runs as batched *semi-naive* frontier sweeps: per source, each
  BFS level unions whole successor masks and only the newly reached
  frontier is expanded in the next round — no tuple-at-a-time closure.

Construct via ``ModelChecker(tree, backend="bitset")``; the row-wise table
backend remains the default and the cross-validation oracle.
"""

from __future__ import annotations

from ... import obs
from ...runtime import faults
from ...runtime.budget import ExecutionBudget
from ...trees.index import tree_index
from ...xpath.engine.bitset import iter_bits
from .. import ast
from ..modelcheck import ModelChecker
from ..tables import Table
from .bittable import BitsetTable

__all__ = ["BitsetModelChecker", "mask_closure"]


def mask_closure(
    successors: dict[int, int], budget: ExecutionBudget | None = None
) -> dict[int, int]:
    """Strict transitive closure of a successor-mask map.

    Two regimes:

    * **forward-only** (every edge goes to a strictly larger id — true for
      all of the signature's relations, whose targets lie later in
      preorder): the graph is acyclic in id order, so one reverse-id sweep
      with ``closure[v] = succ[v] ∪ ⋃ closure[w]`` costs O(edges) mask ORs;
    * otherwise: a semi-naive batched sweep per source — each round ORs the
      successor masks of the *frontier* only, then prunes the frontier
      against the reached mask, so every node is expanded at most once per
      source and each BFS level costs a handful of big-int operations.
    """
    forward = True
    for v, mask in successors.items():
        if mask & ((2 << v) - 1):  # any edge to an id <= v
            forward = False
            break
    closure: dict[int, int] = {}
    regime = "forward" if forward else "semi-naive"
    with obs.span(
        "logic.tc.sweep", budget=budget, regime=regime, sources=len(successors)
    ):
        if forward:
            for v in sorted(successors, reverse=True):
                if budget is not None:
                    budget.tick()
                mask = successors[v]
                reached = mask
                for w in iter_bits(mask):
                    later = closure.get(w)
                    if later:
                        reached |= later
                closure[v] = reached
            return closure
        for source, first in successors.items():
            if budget is not None:
                budget.tick()
            reached = 0
            frontier = first
            while frontier:
                reached |= frontier
                fresh = 0
                for v in iter_bits(frontier):
                    nxt = successors.get(v)
                    if nxt is not None:
                        fresh |= nxt
                frontier = fresh & ~reached
            closure[source] = reached
    return closure


class BitsetModelChecker(ModelChecker):
    """The ``bitset`` checker backend: columnar tables over the shared index."""

    backend = "bitset"

    def __init__(
        self,
        tree,
        backend: str | None = None,
        budget: ExecutionBudget | None = None,
    ):
        super().__init__(tree, backend, budget)
        self.index = tree_index(tree)
        self._bcache: dict[ast.Formula, BitsetTable] = {}
        self._table_cache: dict[ast.Formula, Table] = {}

    # -- public API ------------------------------------------------------------

    def table(self, formula: ast.Formula) -> Table:
        """The row-wise table of satisfying assignments (converted once)."""
        faults.check("logic.bitset")
        with obs.span("logic.table", budget=self.budget, backend=self.backend):
            cached = self._table_cache.get(formula)
            if cached is None:
                cached = self.btable(formula).to_table()
                self._table_cache[formula] = cached
            return cached

    def btable(self, formula: ast.Formula) -> BitsetTable:
        """The columnar table of satisfying assignments (memoized
        structurally, as the compiled XPath plans are)."""
        cached = self._bcache.get(formula)
        if cached is None:
            cached = self._eval(formula)
            self._bcache[formula] = cached
        return cached

    def holds(self, formula: ast.Formula, env: dict[str, int] | None = None) -> bool:
        faults.check("logic.bitset")
        with obs.span("logic.holds", budget=self.budget, backend=self.backend):
            env = env or {}
            table = self.btable(formula)
            missing = [c for c in table.columns if c not in env]
            if missing:
                raise ValueError(f"unassigned free variables: {missing}")
            for var in table.columns:
                table = table.select_eq(var, env[var])
            return table.truth

    def node_set(self, formula: ast.Formula, var: str) -> set[int]:
        faults.check("logic.bitset")
        with obs.span("logic.node_set", budget=self.budget, backend=self.backend):
            table = self.btable(formula)
            if table.columns == ():
                return set(self.universe) if table.truth else set()
            if table.columns != (var,):
                raise ValueError(
                    f"expected free variables ({var},), got {table.columns}"
                )
            mask = table.data.get((), 0)
            if self.budget is not None:
                self.budget.check_size(mask.bit_count())
            return set(iter_bits(mask))

    def node_mask(self, formula: ast.Formula, var: str) -> int:
        """The satisfying set as a raw bitmask (bitset-backend extra)."""
        with obs.span("logic.node_set", budget=self.budget, backend=self.backend):
            table = self.btable(formula)
            if table.columns == ():
                return self.index.full if table.truth else 0
            if table.columns != (var,):
                raise ValueError(
                    f"expected free variables ({var},), got {table.columns}"
                )
            return table.data.get((), 0)

    def pairs(self, formula: ast.Formula, x: str, y: str) -> set[tuple[int, int]]:
        faults.check("logic.bitset")
        with obs.span("logic.pairs", budget=self.budget, backend=self.backend):
            table = self.btable(formula)
            table = table.pad(
                tuple(sorted(set(table.columns) | {x, y})),
                self.index.n,
                self.index.full,
            )
            extra = [c for c in table.columns if c not in (x, y)]
            if extra:
                raise ValueError(f"unexpected free variables {extra}")
            result = table.pairs(x, y)
            if self.budget is not None:
                self.budget.check_size(len(result), "pair relation")
            return result

    # -- evaluation ---------------------------------------------------------------

    def _eval(self, formula: ast.Formula) -> BitsetTable:
        index = self.index
        n, full = index.n, index.full
        if self.budget is not None:
            # One checkpoint per (uncached) subformula evaluation.
            self.budget.tick()
        if isinstance(formula, ast.LabelAtom):
            return BitsetTable.unary(
                formula.var, index.label_masks.get(formula.label, 0)
            )
        if isinstance(formula, ast.Rel):
            return BitsetTable.from_source_masks(
                formula.left, formula.right, index.relation_masks(formula.name)
            )
        if isinstance(formula, ast.Eq):
            if formula.left == formula.right:
                return BitsetTable.boolean(True)
            return BitsetTable.from_source_masks(
                formula.left, formula.right, {v: 1 << v for v in range(n)}
            )
        if isinstance(formula, ast.TrueFormula):
            return BitsetTable.boolean(True)
        if isinstance(formula, ast.Not):
            return self.btable(formula.operand).complement(n, full)
        if isinstance(formula, ast.And):
            return self.btable(formula.left).join(self.btable(formula.right))
        if isinstance(formula, ast.Or):
            return self.btable(formula.left).union(
                self.btable(formula.right), n, full
            )
        if isinstance(formula, ast.Exists):
            return self.btable(formula.body).project_away(formula.var)
        if isinstance(formula, ast.Forall):
            inner = self.btable(formula.body).complement(n, full)
            return inner.project_away(formula.var).complement(n, full)
        if isinstance(formula, ast.TC):
            return self._eval_tc(formula)
        raise TypeError(f"unknown formula: {formula!r}")

    def _eval_tc(self, formula: ast.TC) -> BitsetTable:
        faults.check("logic.bitset.tc")
        n, full = self.index.n, self.index.full
        body = self.btable(formula.body)
        cols = tuple(sorted(set(body.columns) | {formula.x, formula.y}))
        body = body.pad(cols, n, full)
        key_cols = cols[:-1]
        params = tuple(c for c in cols if c not in (formula.x, formula.y))

        # Regroup body buckets into per-parameter-valuation successor maps.
        groups: dict[tuple[int, ...], dict[int, int]] = {}
        last = cols[-1]
        if last == formula.y:
            xpos = key_cols.index(formula.x)
            ppos = [i for i, c in enumerate(key_cols) if c != formula.x]
            for key, mask in body.data.items():
                pkey = tuple(key[i] for i in ppos)
                succ = groups.setdefault(pkey, {})
                succ[key[xpos]] = succ.get(key[xpos], 0) | mask
        elif last == formula.x:
            ypos = key_cols.index(formula.y)
            ppos = [i for i, c in enumerate(key_cols) if c != formula.y]
            for key, mask in body.data.items():
                pkey = tuple(key[i] for i in ppos)
                succ = groups.setdefault(pkey, {})
                target = 1 << key[ypos]
                for a in iter_bits(mask):
                    succ[a] = succ.get(a, 0) | target
        else:
            # The mask column is the largest *parameter* (params[-1]).
            xpos = key_cols.index(formula.x)
            ypos = key_cols.index(formula.y)
            ppos = [
                i for i, c in enumerate(key_cols) if c not in (formula.x, formula.y)
            ]
            for key, mask in body.data.items():
                prefix = tuple(key[i] for i in ppos)
                target = 1 << key[ypos]
                for pv in iter_bits(mask):
                    succ = groups.setdefault(prefix + (pv,), {})
                    succ[key[xpos]] = succ.get(key[xpos], 0) | target

        src, tgt = formula.source, formula.target
        result_cols = tuple(sorted(set(params) | {src, tgt}))
        result_last = result_cols[-1]
        out: dict[tuple[int, ...], int] = {}
        tgt_is_mask = result_last == tgt and tgt != src and tgt not in params

        for pkey, successors in groups.items():
            closure = mask_closure(successors, self.budget)
            env_base = dict(zip(params, pkey))
            pinned_src = env_base.get(src)
            for a, reached in closure.items():
                if pinned_src is not None and pinned_src != a:
                    continue
                env = dict(env_base)
                env[src] = a
                if tgt in env:
                    # tgt pinned (a parameter, or tgt == src): one bit test.
                    if not (reached >> env[tgt]) & 1:
                        continue
                    key = tuple(env[c] for c in result_cols[:-1])
                    out[key] = out.get(key, 0) | (1 << env[result_last])
                elif tgt_is_mask:
                    # Fast path: the whole reachable mask is the bucket.
                    key = tuple(env[c] for c in result_cols[:-1])
                    out[key] = out.get(key, 0) | reached
                else:
                    for b in iter_bits(reached):
                        env[tgt] = b
                        key = tuple(env[c] for c in result_cols[:-1])
                        out[key] = out.get(key, 0) | (1 << env[result_last])
        if not result_cols:
            return BitsetTable.boolean(bool(out))
        return BitsetTable(result_cols, out)
