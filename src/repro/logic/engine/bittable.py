"""Relations over tree nodes as columnar big-int bitmask tables.

The bitset model checker evaluates every subformula into a
:class:`BitsetTable` — the columnar twin of :class:`repro.logic.tables.Table`:

* a **0-column** table is a boolean;
* a **1-column** table is a single bitmask over preorder node ids;
* a **k-column** table (k ≥ 2) is a dict mapping value tuples of the first
  ``k-1`` columns (sorted variable order) to a *nonzero* bitmask over the
  last column — e.g. a binary relation is a per-source target-mask map.

The payoff is that the inner loop of every relational operation runs over
whole masks: conjunction joins AND per-bucket masks, complement is one
``full ^ mask`` per bucket, ``∃`` over the mask column is a popcount test,
and the TC sweeps in :mod:`repro.logic.engine.checker` union successor
masks level by level.  Columns are kept sorted (as in ``Table``) so tables
convert losslessly for cross-validation via :meth:`to_table`.
"""

from __future__ import annotations

from itertools import product
from typing import Iterator

from ...xpath.engine.bitset import iter_bits
from ..tables import Table

__all__ = ["BitsetTable"]


class BitsetTable:
    """A finite relation with named columns, stored column-wise as masks.

    ``columns`` is a sorted tuple of variable names.  For arity 0 ``data``
    is a plain bool; for arity ≥ 1 it is ``dict[tuple[int, ...], int]``
    keyed by values of ``columns[:-1]`` with nonzero masks over
    ``columns[-1]`` (a unary table therefore has the single key ``()``).
    """

    __slots__ = ("columns", "data")

    def __init__(self, columns: tuple[str, ...], data) -> None:
        if tuple(sorted(columns)) != columns:
            raise ValueError(f"columns must be sorted, got {columns}")
        self.columns = columns
        self.data = data

    # -- constructors --------------------------------------------------------

    @staticmethod
    def boolean(value: bool) -> "BitsetTable":
        return BitsetTable((), bool(value))

    @staticmethod
    def unary(var: str, mask: int) -> "BitsetTable":
        return BitsetTable((var,), {(): mask} if mask else {})

    @staticmethod
    def from_source_masks(
        x: str, y: str, masks: dict[int, int]
    ) -> "BitsetTable":
        """The relation ``{(v, w) | w ∈ masks[v]}`` over columns ``{x, y}``.

        If ``x == y``, keeps the diagonal (as :meth:`Table.binary` does).
        """
        if x == y:
            diag = 0
            for v, m in masks.items():
                if (m >> v) & 1:
                    diag |= 1 << v
            return BitsetTable.unary(x, diag)
        if x < y:
            return BitsetTable((x, y), {(v,): m for v, m in masks.items() if m})
        transposed: dict[int, int] = {}
        for v, m in masks.items():
            bit = 1 << v
            for w in iter_bits(m):
                transposed[w] = transposed.get(w, 0) | bit
        return BitsetTable((y, x), {(w,): m for w, m in transposed.items()})

    # -- basic properties ----------------------------------------------------

    @property
    def truth(self) -> bool:
        """For 0-column tables: is this 'true'?  (Nonempty otherwise.)"""
        return bool(self.data)

    def __len__(self) -> int:
        if not self.columns:
            return 1 if self.data else 0
        return sum(mask.bit_count() for mask in self.data.values())

    def rows(self) -> Iterator[tuple[int, ...]]:
        """Row tuples aligned with ``columns`` (for conversion / tests)."""
        if not self.columns:
            if self.data:
                yield ()
            return
        for key, mask in self.data.items():
            for b in iter_bits(mask):
                yield key + (b,)

    def to_table(self) -> Table:
        """The row-wise :class:`Table` with identical contents."""
        if not self.columns:
            return Table.boolean(self.data)
        return Table(self.columns, frozenset(self.rows()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BitsetTable(columns={self.columns}, rows={len(self)})"

    # -- relational algebra ------------------------------------------------

    def join(self, other: "BitsetTable") -> "BitsetTable":
        """Natural join on shared columns, bucketed on the key columns."""
        if not self.columns:
            if self.data:
                return other
            return BitsetTable(other.columns, False if not other.columns else {})
        if not other.columns:
            if other.data:
                return self
            return BitsetTable(self.columns, {})
        a, b = self, other
        if b.columns[-1] > a.columns[-1]:
            a, b = b, a
        # The global maximum column is a's mask column.
        columns = tuple(sorted(set(a.columns) | set(b.columns)))
        out: dict[tuple[int, ...], int] = {}
        a_keys = a.columns[:-1]
        b_keys = b.columns[:-1]
        if b.columns[-1] == a.columns[-1]:
            # Both masks range over the shared maximum: AND per bucket pair.
            shared = [c for c in a_keys if c in b.columns]
            a_pos = [a_keys.index(c) for c in shared]
            b_pos = [b_keys.index(c) for c in shared]
            assemble = _assembler(columns[:-1], a_keys, b_keys)
            bucket: dict[tuple[int, ...], list] = {}
            for bkey, bmask in b.data.items():
                bucket.setdefault(tuple(bkey[i] for i in b_pos), []).append(
                    (bkey, bmask)
                )
            for akey, amask in a.data.items():
                probe = tuple(akey[i] for i in a_pos)
                for bkey, bmask in bucket.get(probe, ()):
                    m = amask & bmask
                    if m:
                        key = assemble(akey, bkey)
                        out[key] = out.get(key, 0) | m
            return BitsetTable(columns, out)
        mcol = b.columns[-1]  # b's mask column, strictly below a's
        if mcol in a.columns:
            # b's mask column is a key column of a: bit-test per a-row.
            shared = [c for c in a_keys if c in b_keys]
            a_pos = [a_keys.index(c) for c in shared]
            b_pos = [b_keys.index(c) for c in shared]
            a_m = a_keys.index(mcol)
            assemble = _assembler(columns[:-1], a_keys, b_keys)
            bucket = {}
            for bkey, bmask in b.data.items():
                bucket.setdefault(tuple(bkey[i] for i in b_pos), []).append(
                    (bkey, bmask)
                )
            for akey, amask in a.data.items():
                probe = tuple(akey[i] for i in a_pos)
                mval = akey[a_m]
                for bkey, bmask in bucket.get(probe, ()):
                    if (bmask >> mval) & 1:
                        key = assemble(akey, bkey)
                        out[key] = out.get(key, 0) | amask
            return BitsetTable(columns, out)
        # b's mask column is new: its bits become key values of the result.
        shared = [c for c in a_keys if c in b_keys]
        a_pos = [a_keys.index(c) for c in shared]
        b_pos = [b_keys.index(c) for c in shared]
        assemble = _assembler(columns[:-1], a_keys, b_keys + (mcol,))
        bucket = {}
        for akey, amask in a.data.items():
            bucket.setdefault(tuple(akey[i] for i in a_pos), []).append(
                (akey, amask)
            )
        for bkey, bmask in b.data.items():
            probe = tuple(bkey[i] for i in b_pos)
            matches = bucket.get(probe)
            if not matches:
                continue
            for w in iter_bits(bmask):
                extended = bkey + (w,)
                for akey, amask in matches:
                    key = assemble(akey, extended)
                    out[key] = out.get(key, 0) | amask
        return BitsetTable(columns, out)

    def pad(
        self, columns: tuple[str, ...], n: int, full: int
    ) -> "BitsetTable":
        """Extend to a superset of columns, new columns ranging over the
        universe ``range(n)`` (whose mask is ``full``)."""
        if columns == self.columns:
            return self
        missing = [c for c in columns if c not in self.columns]
        if set(columns) != set(self.columns) | set(missing):
            raise ValueError("pad target must be a superset of columns")
        if not self.columns:
            if not self.data:
                return BitsetTable(columns, {})
            out = {
                key: full
                for key in product(range(n), repeat=len(columns) - 1)
            }
            return BitsetTable(columns, out)
        old_last = self.columns[-1]
        new_last = columns[-1]
        # Value source per output key column: an existing key position, the
        # old mask column (expanded bitwise), or the universe.
        sources: list[tuple[str, int]] = []
        for c in columns[:-1]:
            if c in self.columns[:-1]:
                sources.append(("k", self.columns.index(c)))
            elif c == old_last:
                sources.append(("m", 0))
            else:
                sources.append(("u", 0))
        mask_is_old = new_last == old_last
        out = {}
        universe = range(n)
        for key, mask in self.data.items():
            pools = []
            for kind, i in sources:
                if kind == "k":
                    pools.append((key[i],))
                elif kind == "m":
                    pools.append(tuple(iter_bits(mask)))
                else:
                    pools.append(universe)
            value = mask if mask_is_old else full
            for okey in product(*pools):
                out[okey] = out.get(okey, 0) | value
        return BitsetTable(columns, out)

    def union(
        self, other: "BitsetTable", n: int, full: int
    ) -> "BitsetTable":
        columns = tuple(sorted(set(self.columns) | set(other.columns)))
        if not columns:
            return BitsetTable.boolean(self.data or other.data)
        a = self.pad(columns, n, full)
        b = other.pad(columns, n, full)
        out = dict(a.data)
        for key, mask in b.data.items():
            out[key] = out.get(key, 0) | mask
        return BitsetTable(columns, out)

    def complement(self, n: int, full: int) -> "BitsetTable":
        if not self.columns:
            return BitsetTable.boolean(not self.data)
        out = {}
        for key in product(range(n), repeat=len(self.columns) - 1):
            m = full ^ self.data.get(key, 0)
            if m:
                out[key] = m
        return BitsetTable(self.columns, out)

    def project_away(self, var: str) -> "BitsetTable":
        """∃var: drop the column (no-op if absent)."""
        if var not in self.columns:
            return self
        if len(self.columns) == 1:
            return BitsetTable.boolean(bool(self.data))
        out: dict[tuple[int, ...], int] = {}
        if var == self.columns[-1]:
            # The second-largest column becomes the new mask column.
            for key, mask in self.data.items():
                head = key[:-1]
                out[head] = out.get(head, 0) | (1 << key[-1])
            return BitsetTable(self.columns[:-1], out)
        idx = self.columns.index(var)
        columns = self.columns[:idx] + self.columns[idx + 1 :]
        for key, mask in self.data.items():
            head = key[:idx] + key[idx + 1 :]
            out[head] = out.get(head, 0) | mask
        return BitsetTable(columns, out)

    def select_eq(self, var: str, value: int) -> "BitsetTable":
        """Filter rows where column ``var`` equals ``value`` and drop it."""
        if var not in self.columns:
            return self
        if len(self.columns) == 1:
            mask = self.data.get((), 0)
            return BitsetTable.boolean(bool((mask >> value) & 1))
        out: dict[tuple[int, ...], int] = {}
        if var == self.columns[-1]:
            for key, mask in self.data.items():
                if (mask >> value) & 1:
                    head = key[:-1]
                    out[head] = out.get(head, 0) | (1 << key[-1])
            return BitsetTable(self.columns[:-1], out)
        idx = self.columns.index(var)
        columns = self.columns[:idx] + self.columns[idx + 1 :]
        for key, mask in self.data.items():
            if key[idx] == value:
                head = key[:idx] + key[idx + 1 :]
                out[head] = out.get(head, 0) | mask
        return BitsetTable(columns, out)

    # -- extraction ---------------------------------------------------------

    def column_values(self, var: str) -> set[int]:
        if var == self.columns[-1]:
            acc = 0
            for mask in self.data.values():
                acc |= mask
            return set(iter_bits(acc))
        idx = self.columns.index(var)
        return {key[idx] for key in self.data}

    def column_mask(self, var: str) -> int:
        """The projection onto ``var`` as one bitmask."""
        acc = 0
        if var == self.columns[-1]:
            for mask in self.data.values():
                acc |= mask
            return acc
        idx = self.columns.index(var)
        for key in self.data:
            acc |= 1 << key[idx]
        return acc

    def pairs(self, x: str, y: str) -> set[tuple[int, int]]:
        """The set of ``(x, y)`` value pairs (columns must be ⊆ {x, y})."""
        if x == y or len(self.columns) == 1:
            return {(row[0], row[0]) for row in self.rows()}
        if x < y:
            return {
                (key[0], w)
                for key, mask in self.data.items()
                for w in iter_bits(mask)
            }
        return {
            (w, key[0])
            for key, mask in self.data.items()
            for w in iter_bits(mask)
        }


def _assembler(target: tuple[str, ...], a_cols: tuple[str, ...], b_cols):
    """A function assembling output key tuples from a- and b-key tuples.

    Each target column is sourced from ``a_cols`` if present there (shared
    columns carry equal values in both keys), else from ``b_cols``.
    """
    plan = []
    for c in target:
        if c in a_cols:
            plan.append((True, a_cols.index(c)))
        else:
            plan.append((False, b_cols.index(c)))
    def assemble(akey: tuple[int, ...], bkey: tuple[int, ...]) -> tuple[int, ...]:
        return tuple(akey[i] if from_a else bkey[i] for from_a, i in plan)
    return assemble
