"""Ehrenfeucht–Fraïssé games on trees.

The standard tool for proving FO-inexpressibility, used here for the
separation-flavoured experiments (T5 in DESIGN.md): Duplicator wins the
r-round game on two trees iff no FO sentence of quantifier rank ≤ r
distinguishes them.  Since Core XPath node expressions translate into FO
(experiment T1's little sibling), a Duplicator win transfers
inexpressibility to Core XPath — e.g. "the root chain has even length" is
not Core XPath-definable, witnessed by Duplicator wins on chains of lengths
2^r and 2^r + 1.

The game is parameterized by the signature: which binary relations the
partial isomorphism must preserve (``child``, ``right``, ``descendant``,
``following_sibling``).  More relations make Spoiler stronger.
"""

from __future__ import annotations

from ..trees.tree import Tree
from .ast import RELATION_NAMES

__all__ = ["EFGame", "duplicator_wins", "distinguishing_rank"]

DEFAULT_SIGNATURE = RELATION_NAMES


class EFGame:
    """The r-round EF game between two trees over a given signature."""

    def __init__(
        self,
        left: Tree,
        right: Tree,
        signature: tuple[str, ...] = DEFAULT_SIGNATURE,
    ):
        self.left = left
        self.right = right
        self.signature = tuple(signature)
        self._memo: dict[tuple, bool] = {}

    # -- structural checks ------------------------------------------------------

    def _related(self, tree: Tree, name: str, a: int, b: int) -> bool:
        if name == "child":
            return tree.parent[b] == a
        if name == "right":
            return tree.next_sibling[a] == b
        if name == "descendant":
            return tree.is_descendant(b, a)
        if name == "following_sibling":
            return tree.parent[a] >= 0 and tree.parent[a] == tree.parent[b] and a < b
        raise ValueError(f"unknown relation {name!r}")

    def _is_partial_isomorphism(
        self, picked_left: tuple[int, ...], picked_right: tuple[int, ...]
    ) -> bool:
        for i, (a, b) in enumerate(zip(picked_left, picked_right)):
            if self.left.labels[a] != self.right.labels[b]:
                return False
            for j in range(i):
                c, d = picked_left[j], picked_right[j]
                if (a == c) != (b == d):
                    return False
                for name in self.signature:
                    if self._related(self.left, name, a, c) != self._related(
                        self.right, name, b, d
                    ):
                        return False
                    if self._related(self.left, name, c, a) != self._related(
                        self.right, name, d, b
                    ):
                        return False
        return True

    # -- the game -------------------------------------------------------------

    def duplicator_wins(
        self,
        rounds: int,
        picked_left: tuple[int, ...] = (),
        picked_right: tuple[int, ...] = (),
    ) -> bool:
        """Does Duplicator win the ``rounds``-round game from this position?"""
        if not self._is_partial_isomorphism(picked_left, picked_right):
            return False
        if rounds == 0:
            return True
        # Positions are order-insensitive up to the pairing; canonicalize by
        # sorting the pairs to improve memo hits.
        pairing = tuple(sorted(zip(picked_left, picked_right)))
        key = (pairing, rounds)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        result = self._play(rounds, picked_left, picked_right)
        self._memo[key] = result
        return result

    def _play(
        self, rounds: int, picked_left: tuple[int, ...], picked_right: tuple[int, ...]
    ) -> bool:
        # Spoiler picks in the left tree.
        for a in self.left.node_ids:
            if not any(
                self.duplicator_wins(rounds - 1, picked_left + (a,), picked_right + (b,))
                for b in self.right.node_ids
            ):
                return False
        # Spoiler picks in the right tree.
        for b in self.right.node_ids:
            if not any(
                self.duplicator_wins(rounds - 1, picked_left + (a,), picked_right + (b,))
                for a in self.left.node_ids
            ):
                return False
        return True


def duplicator_wins(
    left: Tree,
    right: Tree,
    rounds: int,
    signature: tuple[str, ...] = DEFAULT_SIGNATURE,
) -> bool:
    """Duplicator wins the ``rounds``-round EF game on the two trees.

    Equivalently: no FO sentence of quantifier rank ≤ rounds over
    ``signature`` distinguishes them.
    """
    return EFGame(left, right, signature).duplicator_wins(rounds)


def distinguishing_rank(
    left: Tree,
    right: Tree,
    max_rounds: int,
    signature: tuple[str, ...] = DEFAULT_SIGNATURE,
) -> int | None:
    """The least r ≤ max_rounds at which Spoiler wins, or None."""
    game = EFGame(left, right, signature)
    for r in range(max_rounds + 1):
        if not game.duplicator_wins(r):
            return r
    return None

