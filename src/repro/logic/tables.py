"""Relations over tree nodes as named-column tables.

The FO(MTC) model checker evaluates formulas *bottom-up into relations*, the
way a relational database engine evaluates a query plan: every subformula
yields a :class:`Table` of its satisfying assignments (one column per free
variable), combined by natural join (∧), padded union (∨), complement (¬)
and projection (∃).  This keeps model checking polynomial for the bounded
numbers of free variables our translations produce — the naive
assignment-enumeration checker would be exponential in quantifier depth.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Iterable

__all__ = ["Table"]


@dataclass(frozen=True)
class Table:
    """A finite relation with named columns.

    ``columns`` is a sorted tuple of variable names; ``rows`` is a frozenset
    of value tuples aligned with ``columns``.  A 0-column table is a boolean:
    ``{()}`` for true, ``∅`` for false.
    """

    columns: tuple[str, ...]
    rows: frozenset[tuple[int, ...]]

    def __post_init__(self) -> None:
        if tuple(sorted(self.columns)) != self.columns:
            raise ValueError(f"columns must be sorted, got {self.columns}")

    # -- constructors --------------------------------------------------------

    @staticmethod
    def boolean(value: bool) -> "Table":
        return Table((), frozenset({()}) if value else frozenset())

    @staticmethod
    def unary(var: str, values: Iterable[int]) -> "Table":
        return Table((var,), frozenset((v,) for v in values))

    @staticmethod
    def binary(x: str, y: str, pairs: Iterable[tuple[int, int]]) -> "Table":
        """A table over columns {x, y}; if ``x == y``, keeps the diagonal."""
        if x == y:
            return Table((x,), frozenset((a,) for a, b in pairs if a == b))
        if x < y:
            return Table((x, y), frozenset(pairs))
        return Table((y, x), frozenset((b, a) for a, b in pairs))

    # -- basic properties ----------------------------------------------------

    @property
    def is_boolean(self) -> bool:
        return not self.columns

    @property
    def truth(self) -> bool:
        """For 0-column tables: is this 'true'?  (Nonempty otherwise.)"""
        return bool(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    # -- relational algebra ------------------------------------------------

    def join(self, other: "Table") -> "Table":
        """Natural join on shared columns (hash join, smaller side indexed)."""
        # Boolean operands: true is the join identity, false annihilates.
        if not self.columns:
            return other if self.truth else Table(other.columns, frozenset())
        if not other.columns:
            return self if other.truth else Table(self.columns, frozenset())
        if self.columns == other.columns:
            return Table(self.columns, self.rows & other.rows)
        shared = tuple(c for c in self.columns if c in other.columns)
        if not shared:
            columns = tuple(sorted(self.columns + other.columns))
            order = _merge_order(self.columns, other.columns, columns)
            rows = frozenset(
                order(a, b) for a in self.rows for b in other.rows
            )
            return Table(columns, rows)
        # Build the hash index over the smaller operand, probe with the other.
        probe, build = self, other
        if len(build.rows) > len(probe.rows):
            probe, build = build, probe
        probe_key = [probe.columns.index(c) for c in shared]
        build_key = [build.columns.index(c) for c in shared]
        build_rest = [
            i for i, c in enumerate(build.columns) if c not in shared
        ]
        columns = tuple(sorted(set(self.columns) | set(other.columns)))
        index: dict[tuple[int, ...], list[tuple[int, ...]]] = {}
        for row in build.rows:
            key = tuple(row[i] for i in build_key)
            index.setdefault(key, []).append(tuple(row[i] for i in build_rest))
        merged_cols = list(probe.columns) + [build.columns[i] for i in build_rest]
        reorder = [merged_cols.index(c) for c in columns]
        rows = set()
        for row in probe.rows:
            key = tuple(row[i] for i in probe_key)
            for rest in index.get(key, ()):
                merged = row + rest
                rows.add(tuple(merged[i] for i in reorder))
        return Table(columns, frozenset(rows))

    def pad(self, columns: tuple[str, ...], universe: range) -> "Table":
        """Extend to a superset of columns, new columns ranging over
        ``universe`` (the relational rendering of vacuous variables)."""
        if columns == self.columns:
            return self
        missing = [c for c in columns if c not in self.columns]
        if set(columns) != set(self.columns) | set(missing):
            raise ValueError("pad target must be a superset of columns")
        merged_cols = list(self.columns) + missing
        reorder = [merged_cols.index(c) for c in columns]
        rows = set()
        for row in self.rows:
            for extra in product(universe, repeat=len(missing)):
                merged = row + extra
                rows.add(tuple(merged[i] for i in reorder))
        return Table(columns, frozenset(rows))

    def union(self, other: "Table", universe: range) -> "Table":
        columns = tuple(sorted(set(self.columns) | set(other.columns)))
        return Table(
            columns,
            self.pad(columns, universe).rows | other.pad(columns, universe).rows,
        )

    def complement(self, universe: range) -> "Table":
        full = frozenset(product(universe, repeat=len(self.columns)))
        return Table(self.columns, full - self.rows)

    def project_away(self, var: str) -> "Table":
        """∃var: drop the column (no-op if absent)."""
        if var not in self.columns:
            return self
        idx = self.columns.index(var)
        columns = self.columns[:idx] + self.columns[idx + 1 :]
        rows = frozenset(row[:idx] + row[idx + 1 :] for row in self.rows)
        return Table(columns, rows)

    def select_eq(self, var: str, value: int) -> "Table":
        """Filter rows where column ``var`` equals ``value`` and drop it."""
        if var not in self.columns:
            return self
        idx = self.columns.index(var)
        columns = self.columns[:idx] + self.columns[idx + 1 :]
        rows = frozenset(
            row[:idx] + row[idx + 1 :] for row in self.rows if row[idx] == value
        )
        return Table(columns, rows)

    def column_values(self, var: str) -> set[int]:
        idx = self.columns.index(var)
        return {row[idx] for row in self.rows}

    def pairs(self, x: str, y: str) -> set[tuple[int, int]]:
        ix = self.columns.index(x)
        iy = self.columns.index(y)
        return {(row[ix], row[iy]) for row in self.rows}


def _merge_order(
    left: tuple[str, ...], right: tuple[str, ...], target: tuple[str, ...]
):
    merged = list(left) + list(right)
    reorder = [merged.index(c) for c in target]

    def order(a: tuple[int, ...], b: tuple[int, ...]) -> tuple[int, ...]:
        row = a + b
        return tuple(row[i] for i in reorder)

    return order
