"""Pretty-printer for FO(MTC) formulas (inverse of the parser up to sugar)."""

from __future__ import annotations

from . import ast

__all__ = ["unparse_formula"]

_OR, _AND, _UNARY = 0, 1, 2


def unparse_formula(formula: ast.Formula) -> str:
    """Render a formula in the notation of :mod:`repro.logic.parser`."""
    return _fmt(formula, _OR)


def _wrap(text: str, needed: bool) -> str:
    return f"({text})" if needed else text


def _fmt(formula: ast.Formula, level: int) -> str:
    if isinstance(formula, ast.LabelAtom):
        return f"{formula.label}({formula.var})"
    if isinstance(formula, ast.Rel):
        return f"{formula.name}({formula.left},{formula.right})"
    if isinstance(formula, ast.Eq):
        return f"{formula.left}={formula.right}"
    if isinstance(formula, ast.TrueFormula):
        return "true"
    if formula == ast.FALSE:
        return "false"
    if isinstance(formula, ast.Not):
        if isinstance(formula.operand, ast.Eq):
            return f"{formula.operand.left}!={formula.operand.right}"
        return "~" + _fmt(formula.operand, _UNARY)
    if isinstance(formula, ast.And):
        text = f"{_fmt(formula.left, _AND)} & {_fmt(formula.right, _UNARY)}"
        return _wrap(text, level > _AND)
    if isinstance(formula, ast.Or):
        text = f"{_fmt(formula.left, _OR)} | {_fmt(formula.right, _AND)}"
        return _wrap(text, level > _OR)
    if isinstance(formula, ast.Exists):
        variables, body = _collect(formula, ast.Exists)
        text = f"exists {' '.join(variables)}. {_fmt(body, _OR)}"
        return _wrap(text, level > _OR)
    if isinstance(formula, ast.Forall):
        variables, body = _collect(formula, ast.Forall)
        text = f"all {' '.join(variables)}. {_fmt(body, _OR)}"
        return _wrap(text, level > _OR)
    if isinstance(formula, ast.TC):
        body = _fmt(formula.body, _OR)
        return (
            f"tc[{formula.x},{formula.y}]({body})({formula.source},{formula.target})"
        )
    raise TypeError(f"unknown formula: {formula!r}")


def _collect(formula: ast.Formula, ctor) -> tuple[list[str], ast.Formula]:
    variables: list[str] = []
    while isinstance(formula, ctor):
        variables.append(formula.var)
        formula = formula.body
    return variables, formula
