"""Parser for a compact FO(MTC) notation.

Grammar (EBNF; quantifiers scope as far right as possible)::

    formula := iff
    iff     := impl ( '<->' impl )*
    impl    := or ( '->' impl )?
    or      := and ( '|' and )*
    and     := unary ( '&' unary )*
    unary   := '~' unary | quant | atom
    quant   := ('exists' | 'all') VAR+ '.' formula
    atom    := 'true' | 'false'
             | VAR '=' VAR | VAR '!=' VAR
             | REL '(' VAR ',' VAR ')'             -- child/right/descendant/...
             | ('tc' | 'rtc') '[' VAR ',' VAR ']' '(' formula ')' '(' VAR ',' VAR ')'
             | 'root' '(' VAR ')' | 'leaf' '(' VAR ')'
             | NAME '(' VAR ')'                     -- label atom
             | '(' formula ')'

Example::

    parse_formula("exists y. child(x,y) & a(y) & ~rtc[u,v](right(u,v))(y,y)")
"""

from __future__ import annotations

from ..runtime.errors import DepthLimitError, ReproSyntaxError
from . import ast

__all__ = ["DEFAULT_MAX_DEPTH", "parse_formula", "FormulaSyntaxError"]

_RELATIONS = set(ast.RELATION_NAMES)
_KEYWORDS = {"exists", "all", "true", "false", "tc", "rtc", "root", "leaf"} | _RELATIONS

#: Default bound on recursive grammar productions; deep nesting raises a
#: positioned :class:`DepthLimitError` instead of a bare ``RecursionError``.
DEFAULT_MAX_DEPTH = 200


class FormulaSyntaxError(ReproSyntaxError):
    """Raised on malformed formula text."""


def _tokenize(text: str) -> list[tuple[str, str, int]]:
    tokens: list[tuple[str, str, int]] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch in " \t\r\n":
            i += 1
        elif text.startswith("<->", i):
            tokens.append(("<->", "<->", i))
            i += 3
        elif text.startswith("->", i):
            tokens.append(("->", "->", i))
            i += 2
        elif text.startswith("!=", i):
            tokens.append(("!=", "!=", i))
            i += 2
        elif ch in "~&|().,[]=":
            tokens.append((ch, ch, i))
            i += 1
        elif ch.isalnum() or ch == "_":
            start = i
            while i < n and (text[i].isalnum() or text[i] == "_"):
                i += 1
            tokens.append(("name", text[start:i], start))
        else:
            raise FormulaSyntaxError(f"unexpected character {ch!r}", i)
    tokens.append(("end", "", n))
    return tokens


class _Parser:
    def __init__(self, text: str, max_depth: int = DEFAULT_MAX_DEPTH):
        self.tokens = _tokenize(text)
        self.index = 0
        self.max_depth = max_depth
        self._depth = 0

    def _enter(self) -> None:
        self._depth += 1
        if self._depth > self.max_depth:
            raise DepthLimitError(
                "formula nesting exceeds the parser depth limit",
                self.current[2],
                self.max_depth,
            )

    @property
    def current(self) -> tuple[str, str, int]:
        return self.tokens[self.index]

    def advance(self) -> tuple[str, str, int]:
        token = self.tokens[self.index]
        if token[0] != "end":
            self.index += 1
        return token

    def accept(self, kind: str) -> bool:
        if self.current[0] == kind:
            self.advance()
            return True
        return False

    def accept_word(self, word: str) -> bool:
        if self.current[0] == "name" and self.current[1] == word:
            self.advance()
            return True
        return False

    def expect(self, kind: str) -> tuple[str, str, int]:
        if self.current[0] != kind:
            raise FormulaSyntaxError(
                f"expected {kind!r}, found {self.current[1] or 'end of input'!r}",
                self.current[2],
            )
        return self.advance()

    def expect_var(self) -> str:
        kind, value, pos = self.current
        if kind != "name" or value in _KEYWORDS:
            raise FormulaSyntaxError("expected a variable name", pos)
        self.advance()
        return value

    # -- grammar -------------------------------------------------------------

    def formula(self) -> ast.Formula:
        self._enter()
        try:
            left = self.impl()
            while self.accept("<->"):
                left = ast.iff(left, self.impl())
            return left
        finally:
            self._depth -= 1

    def impl(self) -> ast.Formula:
        left = self.disj()
        if self.accept("->"):
            self._enter()
            try:
                return ast.implies(left, self.impl())
            finally:
                self._depth -= 1
        return left

    def disj(self) -> ast.Formula:
        left = self.conj()
        while self.accept("|"):
            left = ast.Or(left, self.conj())
        return left

    def conj(self) -> ast.Formula:
        left = self.unary()
        while self.accept("&"):
            left = ast.And(left, self.unary())
        return left

    def unary(self) -> ast.Formula:
        if self.accept("~"):
            self._enter()
            try:
                return ast.Not(self.unary())
            finally:
                self._depth -= 1
        if self.accept_word("exists"):
            return self._quantifier(ast.Exists)
        if self.accept_word("all"):
            return self._quantifier(ast.Forall)
        return self.atom()

    def _quantifier(self, ctor) -> ast.Formula:
        # Guarded in addition to formula(): a quantifier prefix recurses
        # through ~6 interpreter frames per level, so charging it a second
        # depth unit keeps the counter ahead of the interpreter stack.
        self._enter()
        try:
            variables = [self.expect_var()]
            while self.current[0] == "name" and self.current[1] not in _KEYWORDS:
                variables.append(self.expect_var())
            self.expect(".")
            body = self.formula()
            for var in reversed(variables):
                body = ctor(var, body)
            return body
        finally:
            self._depth -= 1

    def atom(self) -> ast.Formula:
        kind, value, pos = self.current
        if kind == "(":
            self._enter()
            try:
                self.advance()
                inner = self.formula()
                self.expect(")")
                return inner
            finally:
                self._depth -= 1
        if kind != "name":
            raise FormulaSyntaxError(
                f"expected an atom, found {value or 'end of input'!r}", pos
            )
        if value == "true":
            self.advance()
            return ast.TRUE
        if value == "false":
            self.advance()
            return ast.FALSE
        if value in ("tc", "rtc"):
            self.advance()
            self.expect("[")
            x = self.expect_var()
            self.expect(",")
            y = self.expect_var()
            self.expect("]")
            self.expect("(")
            body = self.formula()
            self.expect(")")
            self.expect("(")
            source = self.expect_var()
            self.expect(",")
            target = self.expect_var()
            self.expect(")")
            if value == "tc":
                return ast.TC(x, y, body, source, target)
            return ast.rtc(x, y, body, source, target)
        if value in ("root", "leaf"):
            self.advance()
            self.expect("(")
            var = self.expect_var()
            self.expect(")")
            maker = ast.root_formula if value == "root" else ast.leaf_formula
            return maker(var)
        if value in _RELATIONS:
            self.advance()
            self.expect("(")
            left = self.expect_var()
            self.expect(",")
            right = self.expect_var()
            self.expect(")")
            return ast.Rel(value, left, right)
        # Variable-led equality or a label atom.
        self.advance()
        if self.accept("="):
            return ast.Eq(value, self.expect_var())
        if self.accept("!="):
            return ast.Not(ast.Eq(value, self.expect_var()))
        if self.accept("("):
            var = self.expect_var()
            self.expect(")")
            return ast.LabelAtom(value, var)
        raise FormulaSyntaxError(
            f"expected '=', '!=' or '(' after {value!r}", self.current[2]
        )


def parse_formula(text: str, max_depth: int = DEFAULT_MAX_DEPTH) -> ast.Formula:
    """Parse an FO(MTC) formula in the compact notation.

    Nesting beyond ``max_depth`` recursive productions raises
    :class:`~repro.runtime.errors.DepthLimitError` with the offending
    position, never a bare ``RecursionError``.
    """
    parser = _Parser(text, max_depth)
    result = parser.formula()
    if parser.current[0] != "end":
        raise FormulaSyntaxError(
            f"unexpected trailing input {parser.current[1]!r}", parser.current[2]
        )
    return result
