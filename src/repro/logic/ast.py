"""Abstract syntax of first-order logic with monadic transitive closure.

FO(MTC) is the logic side of the paper's main theorem: over finite
sibling-ordered trees it is expressively equivalent to Regular XPath(W).

The vocabulary is the standard tree signature:

* unary label predicates ``P_a(x)`` (:class:`LabelAtom`),
* binary relations ``child(x, y)``, ``right(x, y)`` (next sibling) — and,
  for convenience in FO-without-TC fragments, the built-ins ``descendant``
  and ``following_sibling`` (which TC renders definable),
* equality.

On top of FO, the *monadic transitive closure* operator
``[TC_{x,y} φ](u, v)`` (:class:`TC`): it holds iff ``(u, v)`` lies in the
**strict** transitive closure of ``{(a, b) | φ(a, b)}`` (Ebbinghaus–Flum
convention; use :func:`rtc` for the reflexive variant, which is what Kleene
star translates to).

Formulas are immutable dataclasses; variables are plain strings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

__all__ = [
    "Formula",
    "LabelAtom",
    "Rel",
    "Eq",
    "TrueFormula",
    "Not",
    "And",
    "Or",
    "Exists",
    "Forall",
    "TC",
    "RELATION_NAMES",
    "implies",
    "iff",
    "rtc",
    "big_and",
    "big_or",
    "exists_many",
    "forall_many",
    "root_formula",
    "leaf_formula",
    "free_variables",
    "fresh_variable",
]

#: Binary relations the model checker evaluates directly on trees.
RELATION_NAMES = ("child", "right", "descendant", "following_sibling")


class Formula:
    """Base class for FO(MTC) formulas."""

    def children(self) -> tuple["Formula", ...]:
        raise NotImplementedError

    def walk(self) -> Iterator["Formula"]:
        yield self
        for child in self.children():
            yield from child.walk()

    @property
    def size(self) -> int:
        """Number of AST nodes (the formula-size measure for C3)."""
        return 1 + sum(child.size for child in self.children())

    def __and__(self, other: "Formula") -> "Formula":
        return And(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return Or(self, other)

    def __invert__(self) -> "Formula":
        return Not(self)

    def __str__(self) -> str:
        from .unparse import unparse_formula

        return unparse_formula(self)


@dataclass(frozen=True)
class LabelAtom(Formula):
    """``P_label(var)``: the node bound to ``var`` carries ``label``."""

    label: str
    var: str

    def children(self) -> tuple[Formula, ...]:
        return ()


@dataclass(frozen=True)
class Rel(Formula):
    """A binary structural atom ``name(left, right)``.

    ``name`` must be one of :data:`RELATION_NAMES`.  ``descendant`` and
    ``following_sibling`` are *strict* (proper descendant / strictly later
    sibling).
    """

    name: str
    left: str
    right: str

    def __post_init__(self) -> None:
        if self.name not in RELATION_NAMES:
            raise ValueError(
                f"unknown relation {self.name!r}; expected one of {RELATION_NAMES}"
            )

    def children(self) -> tuple[Formula, ...]:
        return ()


@dataclass(frozen=True)
class Eq(Formula):
    left: str
    right: str

    def children(self) -> tuple[Formula, ...]:
        return ()


@dataclass(frozen=True)
class TrueFormula(Formula):
    def children(self) -> tuple[Formula, ...]:
        return ()


@dataclass(frozen=True)
class Not(Formula):
    operand: Formula

    def children(self) -> tuple[Formula, ...]:
        return (self.operand,)


@dataclass(frozen=True)
class And(Formula):
    left: Formula
    right: Formula

    def children(self) -> tuple[Formula, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class Or(Formula):
    left: Formula
    right: Formula

    def children(self) -> tuple[Formula, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class Exists(Formula):
    var: str
    body: Formula

    def children(self) -> tuple[Formula, ...]:
        return (self.body,)


@dataclass(frozen=True)
class Forall(Formula):
    var: str
    body: Formula

    def children(self) -> tuple[Formula, ...]:
        return (self.body,)


@dataclass(frozen=True)
class TC(Formula):
    """``[TC_{x,y} body](source, target)`` — strict transitive closure.

    ``x`` and ``y`` are bound inside ``body``; other free variables of
    ``body`` act as parameters.  ``source`` and ``target`` are free variable
    occurrences of the TC formula itself.
    """

    x: str
    y: str
    body: Formula
    source: str
    target: str

    def __post_init__(self) -> None:
        if self.x == self.y:
            raise ValueError("TC binds two distinct variables")

    def children(self) -> tuple[Formula, ...]:
        return (self.body,)


# ---------------------------------------------------------------------------
# Derived forms
# ---------------------------------------------------------------------------

FALSE = Not(TrueFormula())
TRUE = TrueFormula()


def implies(left: Formula, right: Formula) -> Formula:
    """``left → right``."""
    return Or(Not(left), right)


def iff(left: Formula, right: Formula) -> Formula:
    """``left ↔ right``."""
    return And(implies(left, right), implies(right, left))


def rtc(x: str, y: str, body: Formula, source: str, target: str) -> Formula:
    """Reflexive-transitive closure: ``source = target ∨ TC(...)``.

    This is the shape Kleene star translates to.
    """
    return Or(Eq(source, target), TC(x, y, body, source, target))


def big_and(formulas: list[Formula]) -> Formula:
    if not formulas:
        return TRUE
    result = formulas[0]
    for formula in formulas[1:]:
        result = And(result, formula)
    return result


def big_or(formulas: list[Formula]) -> Formula:
    if not formulas:
        return FALSE
    result = formulas[0]
    for formula in formulas[1:]:
        result = Or(result, formula)
    return result


def exists_many(variables: list[str], body: Formula) -> Formula:
    for var in reversed(variables):
        body = Exists(var, body)
    return body


def forall_many(variables: list[str], body: Formula) -> Formula:
    for var in reversed(variables):
        body = Forall(var, body)
    return body


def root_formula(var: str, helper: str = "_r") -> Formula:
    """``var`` is the root: it has no parent."""
    return Not(Exists(helper, Rel("child", helper, var)))


def leaf_formula(var: str, helper: str = "_l") -> Formula:
    """``var`` is a leaf: it has no child."""
    return Not(Exists(helper, Rel("child", var, helper)))


# ---------------------------------------------------------------------------
# Variable bookkeeping
# ---------------------------------------------------------------------------


def free_variables(formula: Formula) -> frozenset[str]:
    """The free variables of ``formula``."""
    if isinstance(formula, LabelAtom):
        return frozenset({formula.var})
    if isinstance(formula, Rel):
        return frozenset({formula.left, formula.right})
    if isinstance(formula, Eq):
        return frozenset({formula.left, formula.right})
    if isinstance(formula, TrueFormula):
        return frozenset()
    if isinstance(formula, Not):
        return free_variables(formula.operand)
    if isinstance(formula, (And, Or)):
        return free_variables(formula.left) | free_variables(formula.right)
    if isinstance(formula, (Exists, Forall)):
        return free_variables(formula.body) - {formula.var}
    if isinstance(formula, TC):
        params = free_variables(formula.body) - {formula.x, formula.y}
        return params | {formula.source, formula.target}
    raise TypeError(f"unknown formula: {formula!r}")


def fresh_variable(used: set[str], stem: str = "v") -> str:
    """A variable name not in ``used`` (which it updates)."""
    i = 0
    while f"{stem}{i}" in used:
        i += 1
    name = f"{stem}{i}"
    used.add(name)
    return name
