"""Model checking FO(MTC) on labelled sibling-ordered trees.

Evaluation is database-style (see :mod:`repro.logic.tables`): each
subformula is compiled bottom-up into the table of its satisfying
assignments.  TC subformulas group their body table by parameter columns and
run a transitive closure per group.

Two interchangeable backends implement this scheme, selected by the
``backend`` argument of :class:`ModelChecker` and of every module-level
convenience:

* ``"table"`` (default) — row-wise frozenset tables, the reference
  semantics and cross-validation oracle;
* ``"bitset"`` — columnar bitmask tables over the shared per-tree index
  (:class:`repro.logic.engine.bittable.BitsetTable`), with ``[TC]`` run as
  batched semi-naive mask sweeps.  See :mod:`repro.logic.engine`.

Both memoize *structurally*: subformula ASTs are frozen dataclasses, so the
cache keys on the formula value itself and equal subtrees arriving from
different objects share one table.

Entry points:

* :func:`satisfying_table` — the full table of a formula,
* :func:`holds` — truth under one assignment,
* :func:`formula_node_set` / :func:`formula_pairs` — the unary/binary query
  defined by a formula with one/two distinguished free variables, in the
  same format the XPath evaluators produce (this is how the translation
  experiments T1/T2 compare the two sides).
"""

from __future__ import annotations

from collections import deque

from .. import obs
from ..runtime.budget import ExecutionBudget
from ..trees.axes import Axis, axis_pairs
from ..trees.tree import Tree
from . import ast
from .tables import Table

__all__ = [
    "CHECKER_BACKENDS",
    "ModelChecker",
    "TableModelChecker",
    "satisfying_table",
    "holds",
    "formula_node_set",
    "formula_pairs",
]

#: Names accepted by the ``backend=`` argument, in preference order for docs.
CHECKER_BACKENDS = ("table", "bitset")

_RELATION_AXIS = {
    "child": Axis.CHILD,
    "right": Axis.RIGHT,
    "descendant": Axis.DESCENDANT,
    "following_sibling": Axis.FOLLOWING_SIBLING,
}


def _checker_class(backend: str) -> type["ModelChecker"]:
    if backend == "table":
        return TableModelChecker
    if backend == "bitset":
        from .engine.checker import BitsetModelChecker

        return BitsetModelChecker
    raise ValueError(
        f"unknown checker backend {backend!r}; expected one of {CHECKER_BACKENDS}"
    )


class ModelChecker:
    """Evaluates FO(MTC) formulas over one tree, memoizing per subformula.

    ``ModelChecker(tree)`` builds the default row-wise ``"table"`` checker;
    ``ModelChecker(tree, backend="bitset")`` builds the columnar bitmask
    checker.  Both expose the same ``table``/``holds``/``node_set``/``pairs``
    surface and agree on every formula (enforced by the cross-validation
    suite).
    """

    #: Overridden per subclass; mirrors ``Evaluator.backend``.
    backend = "table"

    def __new__(
        cls,
        tree: Tree,
        backend: str | None = None,
        budget: ExecutionBudget | None = None,
    ):
        if cls is ModelChecker:
            return super().__new__(_checker_class(backend or "table"))
        return super().__new__(cls)

    def __init__(
        self,
        tree: Tree,
        backend: str | None = None,
        budget: ExecutionBudget | None = None,
    ):
        self.tree = tree
        self.universe = tree.node_ids
        self.budget = budget

    # -- shared public API -----------------------------------------------------

    def table(self, formula: ast.Formula) -> Table:
        raise NotImplementedError

    def _table_internal(self, formula: ast.Formula) -> Table:
        """Table computation without the public-entry span (subclass hook)."""
        return self.table(formula)

    def holds(self, formula: ast.Formula, env: dict[str, int] | None = None) -> bool:
        """Truth of ``formula`` under the assignment ``env``."""
        with obs.span("logic.holds", budget=self.budget, backend=self.backend):
            env = env or {}
            table = self._table_internal(formula)
            missing = [c for c in table.columns if c not in env]
            if missing:
                raise ValueError(f"unassigned free variables: {missing}")
            for var in table.columns:
                table = table.select_eq(var, env[var])
            return table.truth

    def node_set(self, formula: ast.Formula, var: str) -> set[int]:
        """``{n | tree ⊨ formula[var := n]}`` for a formula with one free var."""
        with obs.span("logic.node_set", budget=self.budget, backend=self.backend):
            table = self._table_internal(formula)
            if table.columns == ():
                return set(self.universe) if table.truth else set()
            if table.columns != (var,):
                raise ValueError(
                    f"expected free variables ({var},), got {table.columns}"
                )
            result = table.column_values(var)
            if self.budget is not None:
                self.budget.check_size(len(result))
            return result

    def pairs(self, formula: ast.Formula, x: str, y: str) -> set[tuple[int, int]]:
        """The binary query of a formula with free variables ``{x, y}``.

        Degenerate column sets (the formula may not mention both variables)
        are padded with the universe, matching the logical convention.
        """
        with obs.span("logic.pairs", budget=self.budget, backend=self.backend):
            table = self._table_internal(formula)
            table = table.pad(
                tuple(sorted(set(table.columns) | {x, y})), self.universe
            )
            extra = [c for c in table.columns if c not in (x, y)]
            if extra:
                raise ValueError(f"unexpected free variables {extra}")
            result = table.pairs(x, y)
            if self.budget is not None:
                self.budget.check_size(len(result), "pair relation")
            return result


class TableModelChecker(ModelChecker):
    """The ``table`` backend: row-wise frozenset tables (reference oracle)."""

    backend = "table"

    def __init__(
        self,
        tree: Tree,
        backend: str | None = None,
        budget: ExecutionBudget | None = None,
    ):
        super().__init__(tree, backend, budget)
        # Formulas are frozen dataclasses, hence hashable: memoize on the
        # formula *structure* so structurally equal subformulas share work.
        self._cache: dict[ast.Formula, Table] = {}
        self._relations: dict[str, set[tuple[int, int]]] = {}

    # -- public API ------------------------------------------------------------

    def table(self, formula: ast.Formula) -> Table:
        """The table of satisfying assignments over the free variables."""
        with obs.span("logic.table", budget=self.budget, backend=self.backend):
            return self._table(formula)

    # -- internals ---------------------------------------------------------------

    def _table(self, formula: ast.Formula) -> Table:
        # The memoized recursion target: public ``table`` adds the span,
        # ``_eval`` re-enters here (no nested public spans, matching the
        # bitset checker's ``btable`` recursion).
        cached = self._cache.get(formula)
        if cached is None:
            cached = self._eval(formula)
            self._cache[formula] = cached
        return cached

    def _table_internal(self, formula: ast.Formula) -> Table:
        return self._table(formula)

    # -- structural relations ----------------------------------------------------

    def relation(self, name: str) -> set[tuple[int, int]]:
        pairs = self._relations.get(name)
        if pairs is None:
            pairs = axis_pairs(self.tree, _RELATION_AXIS[name])
            self._relations[name] = pairs
        return pairs

    # -- evaluation ---------------------------------------------------------------

    def _eval(self, formula: ast.Formula) -> Table:
        tree = self.tree
        universe = self.universe
        if self.budget is not None:
            # One checkpoint per (uncached) subformula evaluation.
            self.budget.tick()
        if isinstance(formula, ast.LabelAtom):
            return Table.unary(
                formula.var,
                (n for n in universe if tree.labels[n] == formula.label),
            )
        if isinstance(formula, ast.Rel):
            return Table.binary(formula.left, formula.right, self.relation(formula.name))
        if isinstance(formula, ast.Eq):
            if formula.left == formula.right:
                return Table.boolean(True)
            return Table.binary(
                formula.left, formula.right, ((n, n) for n in universe)
            )
        if isinstance(formula, ast.TrueFormula):
            return Table.boolean(True)
        if isinstance(formula, ast.Not):
            return self._table(formula.operand).complement(universe)
        if isinstance(formula, ast.And):
            return self._table(formula.left).join(self._table(formula.right))
        if isinstance(formula, ast.Or):
            return self._table(formula.left).union(self._table(formula.right), universe)
        if isinstance(formula, ast.Exists):
            return self._table(formula.body).project_away(formula.var)
        if isinstance(formula, ast.Forall):
            inner = self._table(formula.body).complement(universe)
            return inner.project_away(formula.var).complement(universe)
        if isinstance(formula, ast.TC):
            return self._eval_tc(formula)
        raise TypeError(f"unknown formula: {formula!r}")

    def _eval_tc(self, formula: ast.TC) -> Table:
        universe = self.universe
        body = self._table(formula.body)
        # Ensure the bound variables are present as columns (a body that
        # ignores x or y denotes a cylinder over it).
        body = body.pad(
            tuple(sorted(set(body.columns) | {formula.x, formula.y})), universe
        )
        ix = body.columns.index(formula.x)
        iy = body.columns.index(formula.y)
        param_idx = [
            i for i, c in enumerate(body.columns) if c not in (formula.x, formula.y)
        ]
        params = tuple(
            c for c in body.columns if c not in (formula.x, formula.y)
        )

        # Group body rows by parameter valuation, closing each group.
        groups: dict[tuple[int, ...], dict[int, set[int]]] = {}
        for row in body.rows:
            key = tuple(row[i] for i in param_idx)
            groups.setdefault(key, {}).setdefault(row[ix], set()).add(row[iy])

        closed_rows: set[tuple[int, ...]] = set()
        # Result columns: sorted(params + {source, target}) with the usual
        # diagonal handling when source == target or collide with params.
        src, tgt = formula.source, formula.target
        result_cols = tuple(sorted(set(params) | {src, tgt}))

        for key, successors in groups.items():
            closure = _strict_closure(successors, self.budget)
            env_base = dict(zip(params, key))
            for a, reachable in closure.items():
                for b in reachable:
                    env = dict(env_base)
                    ok = True
                    for var, value in ((src, a), (tgt, b)):
                        if var in env and env[var] != value:
                            ok = False
                            break
                        env[var] = value
                    if ok:
                        closed_rows.add(tuple(env[c] for c in result_cols))
        return Table(result_cols, frozenset(closed_rows))


def _strict_closure(
    successors: dict[int, set[int]], budget: ExecutionBudget | None = None
) -> dict[int, set[int]]:
    """Strict transitive closure of an adjacency map, by BFS per source."""
    closure: dict[int, set[int]] = {}
    with obs.span(
        "logic.tc.sweep", budget=budget, regime="bfs", sources=len(successors)
    ):
        for source in successors:
            if budget is not None:
                budget.tick()
            reached: set[int] = set()
            frontier = deque(successors.get(source, ()))
            reached.update(frontier)
            while frontier:
                node = frontier.popleft()
                for nxt in successors.get(node, ()):
                    if nxt not in reached:
                        reached.add(nxt)
                        frontier.append(nxt)
            closure[source] = reached
    return closure


# ---------------------------------------------------------------------------
# One-shot conveniences
# ---------------------------------------------------------------------------


def satisfying_table(
    tree: Tree,
    formula: ast.Formula,
    backend: str = "table",
    budget: ExecutionBudget | None = None,
) -> Table:
    return ModelChecker(tree, backend=backend, budget=budget).table(formula)


def holds(
    tree: Tree,
    formula: ast.Formula,
    env: dict[str, int] | None = None,
    backend: str = "table",
    budget: ExecutionBudget | None = None,
) -> bool:
    return ModelChecker(tree, backend=backend, budget=budget).holds(formula, env)


def formula_node_set(
    tree: Tree,
    formula: ast.Formula,
    var: str,
    backend: str = "table",
    budget: ExecutionBudget | None = None,
) -> set[int]:
    return ModelChecker(tree, backend=backend, budget=budget).node_set(formula, var)


def formula_pairs(
    tree: Tree,
    formula: ast.Formula,
    x: str,
    y: str,
    backend: str = "table",
    budget: ExecutionBudget | None = None,
) -> set[tuple[int, int]]:
    return ModelChecker(tree, backend=backend, budget=budget).pairs(formula, x, y)
