"""Aggregate service telemetry: counters, latency percentiles, breaker views.

One :class:`ServiceStats` instance per service, but the numbers themselves
live in the process-wide :data:`repro.obs.REGISTRY` as labelled instruments
(``service_submitted_total{service=svc3}``, ...): each instance tags its
series with a unique ``service`` label, so per-service snapshots stay exact
while ``REGISTRY.total("service_submitted_total")`` reconciles across every
service in the process (the chaos soak asserts this equals the request
count).  All mutation goes through the instruments' own locks, so workers
recording concurrently never lose increments.

Counters follow the request lifecycle — every admitted request increments
``submitted`` and exactly one of ``ok`` / ``errors`` / ``shed`` (the
zero-lost invariant is checkable as ``submitted == ok + errors + shed``
after drain); ``retries`` and ``fallbacks`` count events, not requests, so
they can exceed ``submitted``.

Latencies are recorded per completed request (sheds too — their latency is
pure queue wait) into a fixed-bucket histogram and summarized as p50/p90 in
:meth:`snapshot`, matching the committed-benchmark schema's percentile
choice (the histogram percentiles are upper bounds, clamped to the observed
maximum).
"""

from __future__ import annotations

import itertools

from .. import obs

__all__ = ["ServiceStats"]

#: Distinguishes the instruments of concurrently live services.
_service_ids = itertools.count()


class ServiceStats:
    """Registry-backed aggregate counters for one service (see above)."""

    def __init__(
        self,
        registry: obs.MetricsRegistry | None = None,
        service: str | None = None,
    ) -> None:
        self.registry = registry if registry is not None else obs.REGISTRY
        self.service = (
            service if service is not None else f"svc{next(_service_ids)}"
        )
        reg, svc = self.registry, self.service
        self._submitted = reg.counter("service_submitted_total", service=svc)
        self._ok = reg.counter("service_results_total", service=svc, status="ok")
        self._errors = reg.counter(
            "service_results_total", service=svc, status="error"
        )
        self._shed = reg.counter(
            "service_results_total", service=svc, status="shed"
        )
        self._retries = reg.counter("service_retries_total", service=svc)
        self._fallbacks = reg.counter("service_fallbacks_total", service=svc)
        self._latency = reg.histogram("service_latency_seconds", service=svc)

    # -- recording ---------------------------------------------------------

    def record_submitted(self, count: int = 1) -> None:
        self._submitted.inc(count)

    def record_result(self, result) -> None:
        """Fold one finished :class:`~repro.service.api.QueryResult` in."""
        if result.status == "ok":
            self._ok.inc()
        elif result.status == "shed":
            self._shed.inc()
        else:
            self._errors.inc()
        if result.retries:
            self._retries.inc(result.retries)
        if result.fallback:
            self._fallbacks.inc()
        self._latency.observe(result.latency)

    # -- reading -----------------------------------------------------------

    @property
    def submitted(self) -> int:
        return self._submitted.value

    @property
    def ok(self) -> int:
        return self._ok.value

    @property
    def errors(self) -> int:
        return self._errors.value

    @property
    def shed(self) -> int:
        return self._shed.value

    @property
    def retries(self) -> int:
        return self._retries.value

    @property
    def fallbacks(self) -> int:
        return self._fallbacks.value

    @property
    def completed(self) -> int:
        return self.ok + self.errors + self.shed

    def snapshot(self, breakers: dict | None = None) -> dict:
        """A JSON-safe view (what ``repro batch --stats`` prints)."""
        payload = {
            "submitted": self.submitted,
            "completed": self.completed,
            "ok": self.ok,
            "errors": self.errors,
            "shed": self.shed,
            "retries": self.retries,
            "fallbacks": self.fallbacks,
            "latency_p50": round(self._latency.percentile(0.50), 6),
            "latency_p90": round(self._latency.percentile(0.90), 6),
        }
        if breakers is not None:
            payload["breakers"] = {
                name: breaker.snapshot() for name, breaker in breakers.items()
            }
        return payload

    @staticmethod
    def merge_snapshots(
        parts: list[dict],
        *,
        submitted: int | None = None,
        latency=None,
    ) -> dict:
        """Merge per-service :meth:`snapshot` dicts into one aggregate view.

        Counters are additive.  Percentiles are **not** — a mean (or any
        other combination) of per-shard p50s is not the p50 of the combined
        population, so this method refuses to fabricate one: pass
        ``latency``, a :class:`repro.obs.Histogram` whose raw bucket counts
        were merged across the parts (see :func:`repro.obs.merged_histogram`),
        and the percentiles are computed from the combined reservoir;
        without it the latency keys are omitted entirely.

        ``submitted`` overrides the additive sum for callers whose parts
        double-count admissions (the sharded service admits in the parent
        and again in the owning shard, so summing both would double the
        true total).
        """
        merged = {
            key: sum(int(part.get(key, 0)) for part in parts)
            for key in ("submitted", "ok", "errors", "shed", "retries", "fallbacks")
        }
        if submitted is not None:
            merged["submitted"] = int(submitted)
        merged["completed"] = merged["ok"] + merged["errors"] + merged["shed"]
        if latency is not None:
            merged["latency_p50"] = round(latency.percentile(0.50), 6)
            merged["latency_p90"] = round(latency.percentile(0.90), 6)
        breakers = {}
        for index, part in enumerate(parts):
            for name, view in (part.get("breakers") or {}).items():
                breakers[f"{index}:{name}" if name in breakers else name] = view
        if breakers:
            merged["breakers"] = breakers
        return merged
