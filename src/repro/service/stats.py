"""Aggregate service telemetry: counters, latency percentiles, breaker views.

One :class:`ServiceStats` instance per service, written by every worker and
the submission path, so all mutation happens under one lock.  Counters
follow the request lifecycle — every admitted request increments
``submitted`` and exactly one of ``ok`` / ``errors`` / ``shed`` (the
zero-lost invariant is checkable as ``submitted == ok + errors + shed``
after drain); ``retries`` and ``fallbacks`` count events, not requests, so
they can exceed ``submitted``.

Latencies are recorded per completed request (sheds too — their latency is
pure queue wait) and summarized as p50/p90 in :meth:`snapshot`, matching
the committed-benchmark schema's percentile choice.
"""

from __future__ import annotations

import threading

__all__ = ["ServiceStats"]


def _percentile(data: list[float], q: float) -> float:
    ordered = sorted(data)
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return ordered[0]
    rank = q * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    return ordered[low] + (rank - low) * (ordered[high] - ordered[low])


class ServiceStats:
    """Thread-safe aggregate counters for one service (see module docstring)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.submitted = 0
        self.ok = 0
        self.errors = 0
        self.shed = 0
        self.retries = 0
        self.fallbacks = 0
        self._latencies: list[float] = []

    # -- recording ---------------------------------------------------------

    def record_submitted(self, count: int = 1) -> None:
        with self._lock:
            self.submitted += count

    def record_result(self, result) -> None:
        """Fold one finished :class:`~repro.service.api.QueryResult` in."""
        with self._lock:
            if result.status == "ok":
                self.ok += 1
            elif result.status == "shed":
                self.shed += 1
            else:
                self.errors += 1
            self.retries += result.retries
            if result.fallback:
                self.fallbacks += 1
            self._latencies.append(result.latency)

    # -- reading -----------------------------------------------------------

    @property
    def completed(self) -> int:
        with self._lock:
            return self.ok + self.errors + self.shed

    def snapshot(self, breakers: dict | None = None) -> dict:
        """A JSON-safe view (what ``repro batch --stats`` prints)."""
        with self._lock:
            latencies = list(self._latencies)
            payload = {
                "submitted": self.submitted,
                "completed": self.ok + self.errors + self.shed,
                "ok": self.ok,
                "errors": self.errors,
                "shed": self.shed,
                "retries": self.retries,
                "fallbacks": self.fallbacks,
                "latency_p50": round(_percentile(latencies, 0.50), 6),
                "latency_p90": round(_percentile(latencies, 0.90), 6),
            }
        if breakers is not None:
            payload["breakers"] = {
                name: breaker.snapshot() for name, breaker in breakers.items()
            }
        return payload
