"""Self-healing for the shard pool: liveness, respawn, restart budgets.

:class:`ShardSupervisor` is a parent-side monitor thread attached to a
:class:`~repro.service.shards.ShardedQueryService` constructed with
``max_restarts``.  Each poll tick it:

* **detects death** — ``Process.is_alive()`` per shard, plus an optional
  heartbeat staleness check (shards emit ``("hb", shard)`` messages on the
  result queue every ``heartbeat_interval``; a shard that is alive but
  silent past ``heartbeat_timeout`` is presumed hung and killed, which
  turns a livelock into the crash path the rest of the machinery handles);
* **respawns under a budget** — restarts are capped at ``max_restarts``
  per rolling ``window`` seconds per shard, with exponential backoff
  (``backoff_base * 2^k``, capped) between consecutive attempts, so a
  crash-looping shard cannot melt the host;
* **resyncs full state** — the replacement process receives every current
  RTIX segment spec (name, shared-memory name, size, epoch) snapshotted
  under the mutation lock together with a fresh request queue (so no
  broadcast is lost in the swap), and the service's tracked fault arms are
  re-delivered (re-armed at their originally requested counts — already-
  consumed fires on the dead shard are not subtracted);
* **re-dispatches the casualties** — requests that were in flight on the
  dead shard are stashed (not resolved) at :meth:`notify_death` time and
  re-submitted once the replacement is live: the caller sees one slightly
  slower answer instead of a :class:`~repro.runtime.errors.ShardCrashedError`;
* **degrades gracefully** — once the budget is exhausted the shard is
  marked *failed* (terminal): its stashed, queued, and future requests
  resolve with a structured
  :class:`~repro.runtime.errors.ShardUnavailableError` (exit code 10)
  instead of retrying forever.

Chaos hooks: the ``service.shard_kill`` fault site, checked once per poll
tick, SIGKILLs one live shard per armed fire — the soak arms it mid-burst
and asserts ``shard_restarts_total`` reconciles exactly with the injected
kills.  Metrics: ``shard_restarts_total{shard}`` and ``shard_resync_seconds``
(spawn + segment re-share + fault re-arm + re-dispatch wall time).
"""

from __future__ import annotations

import threading
import time

from .. import obs
from ..runtime import faults
from ..runtime.errors import InjectedFaultError

__all__ = ["RestartBudget", "ShardSupervisor"]


class RestartBudget:
    """At most ``max_restarts`` restarts inside a rolling ``window`` seconds."""

    def __init__(self, max_restarts: int, window: float):
        if max_restarts < 0:
            raise ValueError(f"max_restarts must be >= 0, got {max_restarts!r}")
        if window <= 0:
            raise ValueError(f"window must be positive, got {window!r}")
        self.max_restarts = max_restarts
        self.window = window
        self._times: list[float] = []

    def _prune(self, now: float) -> None:
        cutoff = now - self.window
        self._times = [stamp for stamp in self._times if stamp > cutoff]

    def allow(self, now: float) -> bool:
        """Whether one more restart fits the budget right now."""
        self._prune(now)
        return len(self._times) < self.max_restarts

    def record(self, now: float) -> None:
        self._prune(now)
        self._times.append(now)

    def spent(self, now: float) -> int:
        """Restarts currently counted against the window."""
        self._prune(now)
        return len(self._times)


class ShardSupervisor:
    """The monitor thread (see module docstring).  One per sharded service."""

    def __init__(
        self,
        service,
        *,
        max_restarts: int = 3,
        window: float = 30.0,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        poll_interval: float = 0.05,
        heartbeat_timeout: float | None = None,
        clock=time.monotonic,
    ):
        self._service = service
        self._poll = poll_interval
        self._backoff_base = backoff_base
        self._backoff_cap = backoff_cap
        self._heartbeat_timeout = heartbeat_timeout
        self._clock = clock
        self._budgets = [RestartBudget(max_restarts, window) for _ in range(service.shards)]
        #: Restarts performed per shard (test/operator visibility).
        self.restart_counts = [0] * service.shards
        #: Shards killed through the ``service.shard_kill`` fault site.
        self.kills = 0
        self._eligible_at: dict[int, float] = {}
        self._stranded: dict[int, list] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._loop, name="repro-shard-supervisor", daemon=True
        )

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        self._thread.start()

    def stop(self) -> None:
        """Stop monitoring and resolve any still-stashed casualties as shed.

        Called by the service's shutdown path *after* admissions close; the
        shed results keep the no-lost-requests invariant for requests whose
        shard died too close to shutdown to be respawned.
        """
        self._stop.set()
        if self._thread.is_alive():
            self._thread.join(timeout=10.0)
        with self._lock:
            leftover = [job for jobs in self._stranded.values() for job in jobs]
            self._stranded.clear()
        service = self._service
        for job in leftover:
            service._finish_local(
                job, service._shed_result(job, "service shut down before execution")
            )

    # -- service-facing hooks --------------------------------------------------

    def notify_death(self, shard: int, jobs: list) -> bool:
        """Stash a dead shard's in-flight jobs for post-respawn re-dispatch.

        Returns ``False`` when the supervisor is already stopping — the
        caller must then resolve the jobs itself (crashed), because nobody
        will respawn the shard anymore.
        """
        if self._stop.is_set():
            return False
        with self._lock:
            if self._stop.is_set():  # pragma: no cover - tiny race window
                return False
            self._stranded.setdefault(shard, []).extend(jobs)
        return True

    # -- the monitor loop ------------------------------------------------------

    def _loop(self) -> None:
        service = self._service
        while not self._stop.wait(self._poll):
            if service._closed:
                return
            try:
                faults.check("service.shard_kill")
            except InjectedFaultError:
                self._inject_kill()
            for shard in range(service.shards):
                try:
                    self._tick_shard(shard)
                except Exception:  # pragma: no cover - the supervisor dying
                    # would silently disable self-healing; survive anything
                    # one shard's handling throws.
                    obs.counter("service_loop_errors_total", loop="supervisor").inc()

    def _tick_shard(self, shard: int) -> None:
        service = self._service
        if service._done[shard] or service._failed[shard]:
            return
        if not service._dead[shard]:
            self._check_liveness(shard)
            if not service._dead[shard]:
                return
        now = self._clock()
        if shard not in self._eligible_at:
            budget = self._budgets[shard]
            if not budget.allow(now):
                self._fail(shard)
                return
            delay = min(self._backoff_cap, self._backoff_base * (2 ** budget.spent(now)))
            budget.record(now)
            self._eligible_at[shard] = now + delay
        if now >= self._eligible_at[shard] and not service._closed:
            del self._eligible_at[shard]
            try:
                elapsed = service._respawn_shard(shard)
            except Exception:
                # Spawn itself failed (fd exhaustion, racing shutdown…):
                # leave the shard dead and retry after a full backoff —
                # the next death-detection pass re-enters the budget.
                self._eligible_at[shard] = self._clock() + self._backoff_cap
                return
            self.restart_counts[shard] += 1
            obs.counter("shard_restarts_total", shard=str(shard)).inc()
            obs.histogram("shard_resync_seconds").observe(elapsed)
            self._redispatch(shard)

    def _check_liveness(self, shard: int) -> None:
        service = self._service
        process = service._processes[shard]
        try:
            alive = process.is_alive()
        except ValueError:  # closed handle
            alive = False
        if not alive:
            service._mark_dead(shard)  # stashes its in-flight jobs with us
            return
        if self._heartbeat_timeout is not None:
            last = service._heartbeats.get(shard)
            if last is not None and time.monotonic() - last > self._heartbeat_timeout:
                # Alive but silent: presumed hung.  Kill it and let the
                # next pass take the ordinary crash-and-respawn path.
                obs.counter("shard_hangs_total", shard=str(shard)).inc()
                try:
                    process.kill()
                except Exception:  # pragma: no cover - racing its own exit
                    pass

    def _inject_kill(self) -> None:
        """``service.shard_kill`` chaos: SIGKILL one live shard."""
        service = self._service
        for shard in range(service.shards):
            if service._dead[shard] or service._done[shard] or service._failed[shard]:
                continue
            try:
                process = service._processes[shard]
                process.kill()
                process.join(timeout=2.0)
            except Exception:  # pragma: no cover - racing its own exit
                pass
            self.kills += 1
            return

    def _redispatch(self, shard: int) -> None:
        with self._lock:
            jobs = self._stranded.pop(shard, [])
        for job in jobs:
            self._service._redispatch_job(shard, job)

    def _fail(self, shard: int) -> None:
        """Budget exhausted: terminal degradation to ShardUnavailableError."""
        service = self._service
        service._failed[shard] = True
        self._eligible_at.pop(shard, None)
        with self._lock:
            jobs = self._stranded.pop(shard, [])
        for job in jobs:
            service._finish_local(job, service._unavailable_result(job))
