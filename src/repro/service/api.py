"""The service's wire surface: requests, results, and the tree registry.

A :class:`QueryRequest` names one operation against one document — an XPath
node evaluation (``eval``), a root-anchored path selection (``select``), an
FO(MTC) model check (``check``), or a two-query equivalence test
(``equivalent``) — plus its resource envelope (per-request ``timeout`` /
``max_steps`` / ``max_nodes``).  The document is either a named entry in
the service's :class:`TreeRegistry` (the "many expressions, one document
collection" workload shape of the relation-algebra studies) or inline
``xml`` text parsed on the worker.

A :class:`QueryResult` is the structured outcome.  Exactly one is produced
per admitted request — the service's no-lost-requests invariant — and its
``status`` is one of:

* ``"ok"`` — ``value`` holds the JSON-safe answer;
* ``"error"`` — ``error`` holds the class name, message, and the
  PR 3 exit-code-contract code of the failure;
* ``"shed"`` — the request was never executed (deadline passed in the
  queue, or the service shut down without draining); ``error`` carries a
  :class:`~repro.runtime.errors.RequestShedError` rendering.

Both dataclasses round-trip through plain dicts (:meth:`QueryRequest.from_json`
/ :meth:`QueryResult.to_json`), which is what the CLI's ``repro batch``
JSONL framing uses.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass

from ..runtime.errors import exit_code_for
from ..trees.tree import Tree

__all__ = ["OPS", "QueryRequest", "QueryResult", "TreeRegistry", "error_payload"]

#: The operations the service executes.
OPS = ("eval", "select", "check", "equivalent")

#: Which request fields each operation requires.
_REQUIRED_FIELDS = {
    "eval": ("query",),
    "select": ("query",),
    "check": ("formula",),
    "equivalent": ("left", "right"),
}

#: Operations that run against a document (equivalence runs over corpora).
_NEEDS_DOCUMENT = ("eval", "select", "check")

_auto_ids = itertools.count(1)


@dataclass
class QueryRequest:
    """One unit of work for the query service (see module docstring)."""

    op: str
    id: str = ""
    tree: str | None = None
    xml: str | None = None
    query: str | None = None
    formula: str | None = None
    left: str | None = None
    right: str | None = None
    alphabet: str = "ab"
    timeout: float | None = None
    max_steps: int | None = None
    max_nodes: int | None = None

    def __post_init__(self) -> None:
        if not self.id:
            self.id = f"req-{next(_auto_ids)}"

    def validate(self) -> None:
        """Raise ``ValueError`` for structurally unusable requests.

        Ill-formed *query text* is not checked here — parsing happens on the
        worker under the request budget; this rejects only requests whose
        shape makes dispatch impossible.
        """
        if self.op not in OPS:
            raise ValueError(f"unknown op {self.op!r}; expected one of {OPS}")
        for name in _REQUIRED_FIELDS[self.op]:
            if getattr(self, name) is None:
                raise ValueError(f"op {self.op!r} requires field {name!r}")
        if self.op in _NEEDS_DOCUMENT and self.tree is None and self.xml is None:
            raise ValueError(f"op {self.op!r} requires 'tree' or inline 'xml'")
        if self.timeout is not None and self.timeout < 0:
            raise ValueError(f"timeout must be >= 0, got {self.timeout!r}")

    @classmethod
    def from_json(cls, payload: dict) -> "QueryRequest":
        """Build a request from a decoded JSONL object (unknown keys rejected)."""
        if not isinstance(payload, dict):
            raise ValueError(f"request must be a JSON object, got {type(payload).__name__}")
        unknown = set(payload) - set(cls.__dataclass_fields__)
        if unknown:
            raise ValueError(f"unknown request field(s): {sorted(unknown)}")
        if "op" not in payload:
            raise ValueError("request is missing the 'op' field")
        request = cls(**{key: payload[key] for key in payload})
        request.validate()
        return request


def error_payload(exc: BaseException) -> dict:
    """The structured rendering of a failure (class, message, contract code)."""
    return {
        "type": type(exc).__name__,
        "message": str(exc),
        "exit_code": exit_code_for(exc),
    }


@dataclass
class QueryResult:
    """The structured outcome of exactly one request."""

    id: str
    op: str
    status: str  # "ok" | "error" | "shed"
    value: object = None
    error: dict | None = None
    retries: int = 0
    fallback: bool = False
    routed: str = "bitset"  # engine family that produced the answer
    latency: float = 0.0
    worker: str = ""

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def exit_code(self) -> int:
        """The PR 3 contract code: 0 for success, the error's code otherwise."""
        if self.status == "ok":
            return 0
        return int((self.error or {}).get("exit_code", 2))

    def to_json(self) -> dict:
        """A JSON-safe dict (the ``repro batch`` output line)."""
        payload = {
            "id": self.id,
            "op": self.op,
            "status": self.status,
            "retries": self.retries,
            "fallback": self.fallback,
            "routed": self.routed,
            "latency": round(self.latency, 6),
        }
        if self.status == "ok":
            payload["value"] = self.value
        else:
            payload["error"] = self.error
        return payload


class TreeRegistry:
    """Named, shared :class:`~repro.trees.tree.Tree` instances.

    The registry is the service's document collection: trees are loaded
    once, their :class:`~repro.trees.index.TreeIndex` and compiled plans
    warm up on first use, and every subsequent request against the same
    name reuses them.  Registration is thread-safe; lookups return the
    live ``Tree`` object (trees are immutable once built).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._trees: dict[str, Tree] = {}
        self._listeners: list = []

    def subscribe(self, listener) -> None:
        """Call ``listener(name)`` whenever ``name``'s tree (re)registers.

        The result cache subscribes here: a re-registration bumps the
        tree's cache epoch so stale values are never served.  Listeners
        run on the registering thread, outside the registry lock, and
        must not raise.
        """
        with self._lock:
            self._listeners.append(listener)

    def register(self, name: str, tree: Tree) -> None:
        if not name:
            raise ValueError("tree name must be non-empty")
        with self._lock:
            self._trees[name] = tree
            listeners = list(self._listeners)
        for listener in listeners:
            listener(name)

    def get(self, name: str) -> Tree:
        with self._lock:
            try:
                return self._trees[name]
            except KeyError:
                raise ValueError(
                    f"unknown tree {name!r}; registered: {sorted(self._trees) or '(none)'}"
                ) from None

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._trees)

    def __len__(self) -> int:
        with self._lock:
            return len(self._trees)
