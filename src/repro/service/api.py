"""The service's wire surface: requests, results, and the tree registry.

A :class:`QueryRequest` names one operation against one document — an XPath
node evaluation (``eval``), a root-anchored path selection (``select``), an
FO(MTC) model check (``check``), a two-query equivalence test
(``equivalent``), or a live-document edit (``mutate``, publishing a new
epoch of a registered tree) — plus its resource envelope (per-request
``timeout`` / ``max_steps`` / ``max_nodes``).  The document is either a named entry in
the service's :class:`TreeRegistry` (the "many expressions, one document
collection" workload shape of the relation-algebra studies) or inline
``xml`` text parsed on the worker.

A :class:`QueryResult` is the structured outcome.  Exactly one is produced
per admitted request — the service's no-lost-requests invariant — and its
``status`` is one of:

* ``"ok"`` — ``value`` holds the JSON-safe answer;
* ``"error"`` — ``error`` holds the class name, message, and the
  PR 3 exit-code-contract code of the failure;
* ``"shed"`` — the request was never executed (deadline passed in the
  queue, or the service shut down without draining); ``error`` carries a
  :class:`~repro.runtime.errors.RequestShedError` rendering.

Both dataclasses round-trip through plain dicts (:meth:`QueryRequest.from_json`
/ :meth:`QueryResult.to_json`), which is what the CLI's ``repro batch``
JSONL framing uses.
"""

from __future__ import annotations

import itertools
import threading
from collections import OrderedDict
from dataclasses import dataclass

from .. import obs
from ..runtime.errors import exit_code_for
from ..trees.index import tree_index
from ..trees.store import index_nbytes
from ..trees.tree import Tree

__all__ = [
    "OPS",
    "QueryRequest",
    "QueryResult",
    "TreePin",
    "TreeRegistry",
    "error_payload",
]

#: The operations the service executes.
OPS = ("eval", "select", "check", "equivalent", "mutate")

#: Which request fields each operation requires.
_REQUIRED_FIELDS = {
    "eval": ("query",),
    "select": ("query",),
    "check": ("formula",),
    "equivalent": ("left", "right"),
    "mutate": ("tree", "edit"),
}

#: Operations that run against a document (equivalence runs over corpora).
_NEEDS_DOCUMENT = ("eval", "select", "check")

_auto_ids = itertools.count(1)


@dataclass
class QueryRequest:
    """One unit of work for the query service (see module docstring)."""

    op: str
    id: str = ""
    tree: str | None = None
    xml: str | None = None
    query: str | None = None
    formula: str | None = None
    left: str | None = None
    right: str | None = None
    alphabet: str = "ab"
    timeout: float | None = None
    max_steps: int | None = None
    max_nodes: int | None = None
    edit: dict | None = None
    min_epoch: int | None = None

    def __post_init__(self) -> None:
        if not self.id:
            self.id = f"req-{next(_auto_ids)}"

    def validate(self) -> None:
        """Raise ``ValueError`` for structurally unusable requests.

        Ill-formed *query text* is not checked here — parsing happens on the
        worker under the request budget; this rejects only requests whose
        shape makes dispatch impossible.
        """
        if self.op not in OPS:
            raise ValueError(f"unknown op {self.op!r}; expected one of {OPS}")
        for name in _REQUIRED_FIELDS[self.op]:
            if getattr(self, name) is None:
                raise ValueError(f"op {self.op!r} requires field {name!r}")
        if self.op in _NEEDS_DOCUMENT and self.tree is None and self.xml is None:
            raise ValueError(f"op {self.op!r} requires 'tree' or inline 'xml'")
        if self.op == "mutate":
            if self.xml is not None:
                raise ValueError("op 'mutate' edits a registered tree; 'xml' is not allowed")
            if not isinstance(self.edit, dict):
                raise ValueError(
                    f"op 'mutate' requires 'edit' to be a JSON object, "
                    f"got {type(self.edit).__name__}"
                )
        elif self.edit is not None:
            raise ValueError(f"op {self.op!r} does not take an 'edit'")
        if self.min_epoch is not None and (
            not isinstance(self.min_epoch, int) or self.min_epoch < 0
        ):
            raise ValueError(f"min_epoch must be a non-negative int, got {self.min_epoch!r}")
        if self.timeout is not None and self.timeout < 0:
            raise ValueError(f"timeout must be >= 0, got {self.timeout!r}")

    @classmethod
    def from_json(cls, payload: dict) -> "QueryRequest":
        """Build a request from a decoded JSONL object (unknown keys rejected)."""
        if not isinstance(payload, dict):
            raise ValueError(f"request must be a JSON object, got {type(payload).__name__}")
        unknown = set(payload) - set(cls.__dataclass_fields__)
        if unknown:
            raise ValueError(f"unknown request field(s): {sorted(unknown)}")
        if "op" not in payload:
            raise ValueError("request is missing the 'op' field")
        request = cls(**{key: payload[key] for key in payload})
        request.validate()
        return request


def error_payload(exc: BaseException) -> dict:
    """The structured rendering of a failure (class, message, contract code)."""
    return {
        "type": type(exc).__name__,
        "message": str(exc),
        "exit_code": exit_code_for(exc),
    }


@dataclass
class QueryResult:
    """The structured outcome of exactly one request."""

    id: str
    op: str
    status: str  # "ok" | "error" | "shed"
    value: object = None
    error: dict | None = None
    retries: int = 0
    fallback: bool = False
    routed: str = "bitset"  # engine family that produced the answer
    latency: float = 0.0
    worker: str = ""

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def exit_code(self) -> int:
        """The PR 3 contract code: 0 for success, the error's code otherwise."""
        if self.status == "ok":
            return 0
        return int((self.error or {}).get("exit_code", 2))

    def to_json(self) -> dict:
        """A JSON-safe dict (the ``repro batch`` output line)."""
        payload = {
            "id": self.id,
            "op": self.op,
            "status": self.status,
            "retries": self.retries,
            "fallback": self.fallback,
            "routed": self.routed,
            "latency": round(self.latency, 6),
        }
        if self.status == "ok":
            payload["value"] = self.value
        else:
            payload["error"] = self.error
        return payload


class TreePin:
    """A reader's hold on one epoch of a named tree (snapshot isolation).

    Pinning costs one dict lookup — trees are immutable, so the "snapshot"
    is simply the ``Tree`` object that was current at pin time; mutations
    publish *new* objects and never touch pinned ones.  The pin exists to
    make the reader's view explicit: the ``(tree, epoch)`` pair taken
    atomically under the registry lock, plus a live-readers gauge
    (``snapshot_pins``) for observability.  ``release()`` is idempotent;
    the pin is also a context manager.
    """

    __slots__ = ("name", "tree", "epoch", "_released", "_registry")

    def __init__(self, name: str, tree: Tree, epoch: int, registry=None):
        self.name = name
        self.tree = tree
        self.epoch = epoch
        self._released = False
        # Set by store-backed registries: eviction defers to live pins, so
        # release() must report back to the per-name pin counts.
        self._registry = registry

    def release(self) -> None:
        if not self._released:
            self._released = True
            obs.gauge("snapshot_pins").dec()
            if self._registry is not None:
                self._registry._unpin(self.name)

    def __enter__(self) -> "TreePin":
        return self

    def __exit__(self, *exc) -> None:
        self.release()


class TreeRegistry:
    """Named, shared :class:`~repro.trees.tree.Tree` instances with epochs.

    The registry is the service's document collection: trees are loaded
    once, their :class:`~repro.trees.index.TreeIndex` and compiled plans
    warm up on first use, and every subsequent request against the same
    name reuses them.  Registration is thread-safe; lookups return the
    live ``Tree`` object (trees are immutable once built).

    Live documents add an **epoch** per name: every (re)registration bumps
    it, and :meth:`mutate` publishes an edited copy-on-write snapshot under
    the next epoch.  Readers take a :class:`TreePin` — an atomic
    ``(tree, epoch)`` view — so a request in flight keeps answering against
    the exact snapshot it started with while writers race ahead.

    A disk-backed :class:`~repro.trees.store.TreeStore` (via
    :meth:`attach_store`) lifts the RAM cap: lookups fall back to the
    store on a miss (single-flight — concurrent cold touches share one
    load), an optional resident-byte budget evicts least-recently-used
    trees back to disk (pinned trees are exempt; eviction only drops the
    registry's reference, so in-flight readers keep their snapshot), and
    (re)registrations write through to the store so the stored generation
    tracks the live epoch.  Evicting never loses the name's epoch: the
    result-cache guard ``registry.epoch(pin.name) == pin.epoch`` holds
    across an evict/reload cycle because the store file is packed at the
    epoch it re-publishes with.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._mutation_lock = threading.Lock()
        self._trees: dict[str, Tree] = {}
        self._epochs: dict[str, int] = {}
        self._listeners: list = []
        self._wal = None
        # Disk-backed tier (attach_store): the store, its write mode, the
        # resident-byte budget, LRU costs (name -> serialized bytes, oldest
        # first), per-name pin counts, and in-flight single-flight loads.
        self._store = None
        self._store_readonly = False
        self._store_lock = threading.Lock()  # serializes pack() writers
        self._resident_budget: int | None = None
        self._resident_bytes = 0
        self._lru: "OrderedDict[str, int]" = OrderedDict()
        self._pins: dict[str, int] = {}
        self._loads: dict[str, threading.Event] = {}

    @property
    def wal(self):
        """The attached :class:`~repro.trees.wal.WriteAheadLog`, or ``None``."""
        return self._wal

    def attach_wal(self, wal) -> None:
        """Make every future (re)registration and mutation durable.

        From this point on, :meth:`register` and :meth:`mutate` append to
        ``wal`` *before* publishing (log-ahead).  Trees already registered
        but unknown to the log (e.g. loaded before a fresh WAL directory
        was opened) are baselined immediately with full ``register``
        records, so a later ``mutate`` record is never the first mention of
        its tree in the durable history.
        """
        with self._mutation_lock:
            self._wal = wal
            with self._lock:
                baseline = [
                    (name, self._trees[name], self._epochs[name])
                    for name in sorted(self._trees)
                    if name not in wal.known_trees
                ]
            for name, tree, epoch in baseline:
                wal.append_register(name, epoch, tree)

    def _wal_state(self) -> dict:
        """The ``{name: (tree, epoch)}`` snapshot the WAL folds into snapshots."""
        with self._lock:
            return {name: (tree, self._epochs[name]) for name, tree in self._trees.items()}

    # -- disk-backed store ---------------------------------------------------

    @property
    def store(self):
        """The attached :class:`~repro.trees.store.TreeStore`, or ``None``."""
        return self._store

    @property
    def store_readonly(self) -> bool:
        return self._store_readonly

    @property
    def resident_budget(self) -> int | None:
        return self._resident_budget

    @property
    def resident_bytes(self) -> int:
        """The priced bytes of the currently resident trees."""
        return self._resident_bytes

    def resident_names(self) -> list[str]:
        """The names resident in memory right now (a subset of names())."""
        with self._lock:
            return sorted(self._trees)

    def attach_store(self, store, *, resident_budget: int | None = None,
                     readonly: bool = False) -> None:
        """Back this registry with ``store`` (and optionally a byte budget).

        Residents the store does not hold at their current epoch are packed
        immediately (unless ``readonly``), so every registered tree is
        evictable from the start; every resident is then priced (via
        :func:`~repro.trees.store.index_nbytes`) into the LRU accounting
        and the registry evicts down to ``resident_budget`` if one is set.

        ``readonly`` marks a registry that must never write store files —
        the shard processes attach this way, mmapping the parent's files
        directly while the parent remains the single writer.
        """
        if resident_budget is not None and resident_budget <= 0:
            raise ValueError(
                f"resident_budget must be positive, got {resident_budget!r}"
            )
        with self._mutation_lock:
            with self._lock:
                residents = [
                    (name, self._trees[name], self._epochs[name])
                    for name in sorted(self._trees)
                ]
            if not readonly:
                with self._store_lock:
                    for name, tree, epoch in residents:
                        if store.epoch(name) != epoch:
                            store.pack(name, tree, epoch=epoch)
            costs = {
                name: index_nbytes(tree_index(tree)) for name, tree, _ in residents
            }
            with self._lock:
                self._store = store
                self._store_readonly = readonly
                self._resident_budget = resident_budget
                for name, tree, _ in residents:
                    if self._trees.get(name) is tree and name not in self._lru:
                        self._lru[name] = costs[name]
                        self._resident_bytes += costs[name]
                obs.gauge("registry_resident_bytes").set(self._resident_bytes)
        self._evict_over_budget()

    def _next_epoch(self, name: str) -> int:
        """The epoch a fresh registration of ``name`` should publish at.

        With a store attached, a cold name's stored generation counts:
        re-registering over an evicted (or never-loaded) tree must still
        move the epoch forward, never reuse one the store already holds.
        """
        current = self.epoch(name)
        store = self._store
        if store is not None:
            stored = store.epoch(name)
            if stored is not None and stored > current:
                current = stored
        return current + 1

    def _lookup(self, name: str, *, pin: bool = False) -> tuple[Tree, int]:
        """The resident ``(tree, epoch)`` for ``name``, loading on a miss.

        Single-flight: the first thread to miss becomes the loader; every
        concurrent miss waits on its event and then re-checks, so one cold
        touch costs one store read no matter the fan-in.  A failed load
        (corrupt file, injected ``store.load`` fault) propagates to the
        loader and wakes the waiters, the first of which retries as the
        next loader — counted faults therefore self-heal.  With ``pin``
        the per-name pin count is incremented atomically with the hit, so
        eviction can never slip between lookup and pin.
        """
        while True:
            with self._lock:
                tree = self._trees.get(name)
                if tree is not None:
                    if name in self._lru:
                        self._lru.move_to_end(name)
                    if pin:
                        self._pins[name] = self._pins.get(name, 0) + 1
                    return tree, self._epochs[name]
                store = self._store
                if store is None:
                    raise ValueError(
                        f"unknown tree {name!r}; registered: "
                        f"{sorted(self._trees) or '(none)'}"
                    )
                event = self._loads.get(name)
                leader = event is None
                if leader:
                    event = threading.Event()
                    self._loads[name] = event
            if not leader:
                event.wait()
                continue
            published = False
            try:
                try:
                    tree, epoch = store.load(name)
                except KeyError:
                    raise ValueError(
                        f"unknown tree {name!r}; registered: "
                        f"{self.names() or '(none)'}"
                    ) from None
                cost = index_nbytes(tree_index(tree))
                with self._lock:
                    # Publish only a generation at least as new as the one
                    # the registry already knows (epochs survive eviction
                    # exactly for this check): a load that raced an eviction
                    # may have read the file *before* the newer generation
                    # was packed, and publishing it would regress the epoch
                    # — and let the budget sweep re-pack the old bytes over
                    # the new ones.  Stale loads retry; the eviction that
                    # dropped the newer resident packed it first, so the
                    # re-read is guaranteed to see the current generation.
                    if (
                        name not in self._trees
                        and epoch >= self._epochs.get(name, 0)
                    ):
                        self._trees[name] = tree
                        self._epochs[name] = epoch
                        self._lru[name] = cost
                        self._resident_bytes += cost
                        obs.gauge("registry_resident_bytes").set(
                            self._resident_bytes
                        )
                        if pin:
                            self._pins[name] = self._pins.get(name, 0) + 1
                        published = True
            finally:
                with self._lock:
                    self._loads.pop(name, None)
                event.set()
            if published:
                # Return the loaded snapshot directly rather than re-probing
                # the resident map: under pin pressure the budget sweep may
                # evict this very tree immediately, and re-probing would
                # load it again forever.  The caller's reference (and its
                # pin, taken atomically with the publish above) stays valid
                # either way.
                self._evict_over_budget()
                return tree, epoch

    def _account(self, name: str, tree: Tree, cost: int) -> None:
        """Re-price ``name`` after a (re)registration published ``tree``."""
        with self._lock:
            if self._trees.get(name) is not tree:
                return  # republished while we were pricing; theirs counts
            previous = self._lru.pop(name, 0)
            self._lru[name] = cost
            self._resident_bytes += cost - previous
            obs.gauge("registry_resident_bytes").set(self._resident_bytes)

    def _write_through(self, name: str, tree: Tree, epoch: int) -> None:
        """Sync the stored generation with a just-published registration.

        Skipped when the store already holds this epoch (the sharded
        mutator packs before broadcasting, so its registrations arrive
        pre-synced).  A failed pack is counted, not raised: the tree
        simply stays unevictable until a later pack succeeds.
        """
        store = self._store
        if store is None or self._store_readonly:
            return
        with self._store_lock:
            with self._lock:
                if (
                    self._epochs.get(name) != epoch
                    or self._trees.get(name) is not tree
                ):
                    return  # a newer registration owns the store file now
            stored = store.epoch(name)
            if stored is not None and stored >= epoch:
                return  # already durable (or a newer pack beat us to it)
            try:
                store.pack(name, tree, epoch=epoch)
            except OSError:
                obs.counter("store_pack_errors_total").inc()

    def _drop_resident(self, name: str) -> int:
        """Forget the resident tree (caller holds ``_lock``); bytes freed.

        Only the registry's reference is dropped — the epoch survives (the
        stored generation carries it) and the tree object itself stays
        valid for any reader still holding it.
        """
        del self._trees[name]
        cost = self._lru.pop(name, 0)
        self._resident_bytes -= cost
        obs.gauge("registry_resident_bytes").set(self._resident_bytes)
        return cost

    def _evict_over_budget(self) -> None:
        """Evict LRU-first until resident bytes fit the budget.

        A victim is only evictable once the store holds its current epoch
        (read-write registries re-pack to get there; read-only ones skip
        it) and no reader pins it.  When everything left is pinned or
        unevictable the loop gives up — a burst of pinned readers may
        overshoot the budget transiently rather than fail.
        """
        store, budget = self._store, self._resident_budget
        if store is None or budget is None:
            return
        skip: set[str] = set()
        while True:
            with self._lock:
                if self._resident_bytes <= budget:
                    return
                victim = None
                for name in self._lru:  # oldest first
                    if name not in skip and not self._pins.get(name, 0):
                        victim = name
                        break
                if victim is None:
                    return  # every resident is pinned or unevictable
                tree = self._trees[victim]
                epoch = self._epochs[victim]
            # Pack-and-drop as one critical section on the store lock:
            # every packer serializes on it, so once the stored generation
            # is verified (or written) current, no stale packer can regress
            # the file before the drop below commits.  Packing itself is
            # guarded twice — never over a newer stored generation, and
            # never from a snapshot that a concurrent registration has
            # superseded — because a stale pack would silently replace the
            # only durable copy of the current epoch.
            with self._store_lock:
                stored = store.epoch(victim)
                if stored != epoch:
                    if self._store_readonly or (
                        stored is not None and stored > epoch
                    ):
                        skip.add(victim)
                        continue
                    with self._lock:
                        superseded = (
                            self._trees.get(victim) is not tree
                            or self._epochs.get(victim) != epoch
                        )
                    if superseded:
                        skip.add(victim)
                        continue
                    try:
                        store.pack(victim, tree, epoch=epoch)
                    except OSError:
                        obs.counter("store_pack_errors_total").inc()
                        skip.add(victim)
                        continue
                with self._lock:
                    if (
                        self._pins.get(victim, 0)
                        or self._trees.get(victim) is not tree
                        or self._epochs.get(victim) != epoch
                    ):
                        skip.add(victim)  # pinned or republished since chosen
                        continue
                    self._drop_resident(victim)
            obs.counter("store_evictions_total").inc()

    def evict(self, name: str) -> int:
        """Explicitly demote ``name`` to the store; the bytes freed.

        Refuses with ``ValueError`` while any reader pins the tree (the
        caller should retry after the pins drain).  Evicting an
        already-cold name returns 0; an unknown name raises.
        """
        store = self._store
        if store is None:
            raise ValueError("no store attached; evict() requires attach_store()")
        with self._lock:
            tree = self._trees.get(name)
            known = name in self._epochs
            if tree is not None:
                pins = self._pins.get(name, 0)
                if pins:
                    raise ValueError(
                        f"tree {name!r} is pinned by {pins} reader(s); "
                        "refusing to evict"
                    )
                epoch = self._epochs[name]
        if tree is None:
            if known or store.contains(name):
                return 0
            raise ValueError(
                f"unknown tree {name!r}; registered: {self.names() or '(none)'}"
            )
        # Pack-and-drop under the store lock, like the budget sweep: the
        # stored generation cannot be regressed by a stale packer between
        # the currency check and the drop.
        with self._store_lock:
            stored = store.epoch(name)
            if stored is None or stored < epoch:
                if self._store_readonly:
                    raise ValueError(
                        f"tree {name!r} is newer than its stored generation "
                        "and the store is read-only"
                    )
                with self._lock:
                    superseded = (
                        self._trees.get(name) is not tree
                        or self._epochs.get(name) != epoch
                    )
                if superseded:
                    return 0  # a newer registration owns the store file now
                store.pack(name, tree, epoch=epoch)
            with self._lock:
                pins = self._pins.get(name, 0)
                if pins:
                    raise ValueError(
                        f"tree {name!r} is pinned by {pins} reader(s); "
                        "refusing to evict"
                    )
                if (
                    self._trees.get(name) is not tree
                    or self._epochs.get(name) != epoch
                ):
                    return 0  # republished while packing; this one is gone
                freed = self._drop_resident(name)
        obs.counter("store_evictions_total").inc()
        return freed

    def refresh(self, name: str, epoch: int) -> None:
        """Drop a resident older than ``epoch`` so the next touch reloads.

        The shard-side reaction to a parent's "drop" broadcast after a
        mutation: the parent packs the new generation *before*
        broadcasting, so re-loading from the store is guaranteed to see an
        epoch >= the broadcast one.  A no-op for already-cold or
        already-current names.
        """
        with self._lock:
            if name in self._trees and self._epochs.get(name, 0) < epoch:
                self._drop_resident(name)

    def _unpin(self, name: str) -> None:
        with self._lock:
            count = self._pins.get(name, 0) - 1
            if count <= 0:
                self._pins.pop(name, None)
            else:
                self._pins[name] = count
        budget = self._resident_budget
        if budget is not None and self._resident_bytes > budget:
            self._evict_over_budget()

    def subscribe(self, listener) -> None:
        """Call ``listener(name)`` whenever ``name``'s tree (re)registers.

        The result cache subscribes here: a re-registration bumps the
        tree's cache epoch so stale values are never served.  Listeners
        run on the registering thread, outside the registry lock, and are
        exception-isolated: a raising listener is counted
        (``registry_listener_errors_total``) and skipped, never aborting
        the registration or starving later listeners.
        """
        with self._lock:
            self._listeners.append(listener)

    def register(
        self, name: str, tree: Tree, *, epoch: int | None = None, _wal_logged: bool = False
    ) -> int:
        """Publish ``tree`` under ``name`` and return the new epoch.

        ``epoch`` pins the published epoch explicitly (the sharded tier
        uses this to keep parent and shard epochs in lockstep); by default
        the name's epoch is bumped by one.  With a WAL attached, the
        registration is appended to the log *before* it publishes
        (``_wal_logged=True`` marks callers — :meth:`mutate`, the sharded
        mutator — that already wrote their own record).
        """
        if not name:
            raise ValueError("tree name must be non-empty")
        wal = self._wal
        if wal is not None and not _wal_logged:
            with self._mutation_lock:
                if epoch is None:
                    epoch = self._next_epoch(name)
                wal.append_register(name, epoch, tree)
                return self.register(name, tree, epoch=epoch, _wal_logged=True)
        if epoch is None and self._store is not None:
            epoch = self._next_epoch(name)
        with self._lock:
            if epoch is None:
                epoch = self._epochs.get(name, 0) + 1
            self._trees[name] = tree
            self._epochs[name] = epoch
            listeners = list(self._listeners)
        for listener in listeners:
            try:
                listener(name)
            except Exception:
                obs.counter("registry_listener_errors_total").inc()
        if wal is not None:
            wal.maybe_snapshot(self._wal_state)
        if self._store is not None:
            self._account(name, tree, index_nbytes(tree_index(tree)))
            self._write_through(name, tree, epoch)
            self._evict_over_budget()
        return epoch

    def get(self, name: str) -> Tree:
        tree, _ = self._lookup(name)
        return tree

    def epoch(self, name: str) -> int:
        """The current epoch of ``name`` (0 if never registered).

        An evicted name keeps its epoch — the entry outlives residency, so
        the result-cache guard compares against the live generation even
        while the tree itself is cold.
        """
        with self._lock:
            return self._epochs.get(name, 0)

    def snapshot(self, name: str) -> tuple[Tree, int]:
        """The current ``(tree, epoch)`` pair, taken atomically.

        With a store attached, a cold name is loaded (single-flight) and
        re-published first — callers never see "unknown" for a stored tree.
        """
        return self._lookup(name)

    def pin(self, name: str) -> TreePin:
        """Pin the current snapshot of ``name`` for a reader.

        Store-backed registries count the pin, making the tree
        eviction-exempt until :meth:`TreePin.release`.
        """
        store_backed = self._store is not None
        tree, epoch = self._lookup(name, pin=store_backed)
        obs.gauge("snapshot_pins").inc()
        return TreePin(name, tree, epoch, registry=self if store_backed else None)

    def mutate(self, name: str, edit) -> tuple[Tree, int]:
        """Apply ``edit`` to ``name``'s tree and publish the result.

        The edit is an :mod:`repro.trees.mutate` edit object (or a JSON
        dict in its wire format).  The new snapshot is built copy-on-write
        with its ``TreeIndex`` maintained incrementally, then published
        atomically under the next epoch; concurrent readers holding pins
        (or plain ``get()`` results) keep their pre-edit snapshot.  Writers
        serialize on a mutation lock so edits never interleave.  Returns
        the published ``(tree, epoch)``.
        """
        from ..runtime import faults
        from ..trees.mutate import apply_edit_indexed, edit_from_json, edit_to_json

        if isinstance(edit, dict):
            edit = edit_from_json(edit)
        with self._mutation_lock:
            old = self.get(name)
            faults.check("trees.mutate")
            new_tree = apply_edit_indexed(old, edit)
            if self._wal is not None:
                # Log-ahead: the record is durable before the epoch is
                # visible.  A failed append (wal.append fault, disk error)
                # aborts here with the registry untouched.
                epoch = self.epoch(name) + 1
                self._wal.append_mutate(name, epoch, edit_to_json(edit), new_tree)
                self.register(name, new_tree, epoch=epoch, _wal_logged=True)
            else:
                epoch = self.register(name, new_tree)
        obs.counter("tree_mutations_total", kind=edit.kind).inc()
        return new_tree, epoch

    def names(self) -> list[str]:
        """Every servable name: residents plus (with a store) stored trees."""
        with self._lock:
            known = set(self._trees)
        store = self._store
        if store is not None:
            known.update(store.names())
        return sorted(known)

    def __len__(self) -> int:
        if self._store is not None:
            return len(self.names())
        with self._lock:
            return len(self._trees)
