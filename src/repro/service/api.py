"""The service's wire surface: requests, results, and the tree registry.

A :class:`QueryRequest` names one operation against one document — an XPath
node evaluation (``eval``), a root-anchored path selection (``select``), an
FO(MTC) model check (``check``), a two-query equivalence test
(``equivalent``), or a live-document edit (``mutate``, publishing a new
epoch of a registered tree) — plus its resource envelope (per-request
``timeout`` / ``max_steps`` / ``max_nodes``).  The document is either a named entry in
the service's :class:`TreeRegistry` (the "many expressions, one document
collection" workload shape of the relation-algebra studies) or inline
``xml`` text parsed on the worker.

A :class:`QueryResult` is the structured outcome.  Exactly one is produced
per admitted request — the service's no-lost-requests invariant — and its
``status`` is one of:

* ``"ok"`` — ``value`` holds the JSON-safe answer;
* ``"error"`` — ``error`` holds the class name, message, and the
  PR 3 exit-code-contract code of the failure;
* ``"shed"`` — the request was never executed (deadline passed in the
  queue, or the service shut down without draining); ``error`` carries a
  :class:`~repro.runtime.errors.RequestShedError` rendering.

Both dataclasses round-trip through plain dicts (:meth:`QueryRequest.from_json`
/ :meth:`QueryResult.to_json`), which is what the CLI's ``repro batch``
JSONL framing uses.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass

from .. import obs
from ..runtime.errors import exit_code_for
from ..trees.tree import Tree

__all__ = [
    "OPS",
    "QueryRequest",
    "QueryResult",
    "TreePin",
    "TreeRegistry",
    "error_payload",
]

#: The operations the service executes.
OPS = ("eval", "select", "check", "equivalent", "mutate")

#: Which request fields each operation requires.
_REQUIRED_FIELDS = {
    "eval": ("query",),
    "select": ("query",),
    "check": ("formula",),
    "equivalent": ("left", "right"),
    "mutate": ("tree", "edit"),
}

#: Operations that run against a document (equivalence runs over corpora).
_NEEDS_DOCUMENT = ("eval", "select", "check")

_auto_ids = itertools.count(1)


@dataclass
class QueryRequest:
    """One unit of work for the query service (see module docstring)."""

    op: str
    id: str = ""
    tree: str | None = None
    xml: str | None = None
    query: str | None = None
    formula: str | None = None
    left: str | None = None
    right: str | None = None
    alphabet: str = "ab"
    timeout: float | None = None
    max_steps: int | None = None
    max_nodes: int | None = None
    edit: dict | None = None
    min_epoch: int | None = None

    def __post_init__(self) -> None:
        if not self.id:
            self.id = f"req-{next(_auto_ids)}"

    def validate(self) -> None:
        """Raise ``ValueError`` for structurally unusable requests.

        Ill-formed *query text* is not checked here — parsing happens on the
        worker under the request budget; this rejects only requests whose
        shape makes dispatch impossible.
        """
        if self.op not in OPS:
            raise ValueError(f"unknown op {self.op!r}; expected one of {OPS}")
        for name in _REQUIRED_FIELDS[self.op]:
            if getattr(self, name) is None:
                raise ValueError(f"op {self.op!r} requires field {name!r}")
        if self.op in _NEEDS_DOCUMENT and self.tree is None and self.xml is None:
            raise ValueError(f"op {self.op!r} requires 'tree' or inline 'xml'")
        if self.op == "mutate":
            if self.xml is not None:
                raise ValueError("op 'mutate' edits a registered tree; 'xml' is not allowed")
            if not isinstance(self.edit, dict):
                raise ValueError(
                    f"op 'mutate' requires 'edit' to be a JSON object, "
                    f"got {type(self.edit).__name__}"
                )
        elif self.edit is not None:
            raise ValueError(f"op {self.op!r} does not take an 'edit'")
        if self.min_epoch is not None and (
            not isinstance(self.min_epoch, int) or self.min_epoch < 0
        ):
            raise ValueError(f"min_epoch must be a non-negative int, got {self.min_epoch!r}")
        if self.timeout is not None and self.timeout < 0:
            raise ValueError(f"timeout must be >= 0, got {self.timeout!r}")

    @classmethod
    def from_json(cls, payload: dict) -> "QueryRequest":
        """Build a request from a decoded JSONL object (unknown keys rejected)."""
        if not isinstance(payload, dict):
            raise ValueError(f"request must be a JSON object, got {type(payload).__name__}")
        unknown = set(payload) - set(cls.__dataclass_fields__)
        if unknown:
            raise ValueError(f"unknown request field(s): {sorted(unknown)}")
        if "op" not in payload:
            raise ValueError("request is missing the 'op' field")
        request = cls(**{key: payload[key] for key in payload})
        request.validate()
        return request


def error_payload(exc: BaseException) -> dict:
    """The structured rendering of a failure (class, message, contract code)."""
    return {
        "type": type(exc).__name__,
        "message": str(exc),
        "exit_code": exit_code_for(exc),
    }


@dataclass
class QueryResult:
    """The structured outcome of exactly one request."""

    id: str
    op: str
    status: str  # "ok" | "error" | "shed"
    value: object = None
    error: dict | None = None
    retries: int = 0
    fallback: bool = False
    routed: str = "bitset"  # engine family that produced the answer
    latency: float = 0.0
    worker: str = ""

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def exit_code(self) -> int:
        """The PR 3 contract code: 0 for success, the error's code otherwise."""
        if self.status == "ok":
            return 0
        return int((self.error or {}).get("exit_code", 2))

    def to_json(self) -> dict:
        """A JSON-safe dict (the ``repro batch`` output line)."""
        payload = {
            "id": self.id,
            "op": self.op,
            "status": self.status,
            "retries": self.retries,
            "fallback": self.fallback,
            "routed": self.routed,
            "latency": round(self.latency, 6),
        }
        if self.status == "ok":
            payload["value"] = self.value
        else:
            payload["error"] = self.error
        return payload


class TreePin:
    """A reader's hold on one epoch of a named tree (snapshot isolation).

    Pinning costs one dict lookup — trees are immutable, so the "snapshot"
    is simply the ``Tree`` object that was current at pin time; mutations
    publish *new* objects and never touch pinned ones.  The pin exists to
    make the reader's view explicit: the ``(tree, epoch)`` pair taken
    atomically under the registry lock, plus a live-readers gauge
    (``snapshot_pins``) for observability.  ``release()`` is idempotent;
    the pin is also a context manager.
    """

    __slots__ = ("name", "tree", "epoch", "_released")

    def __init__(self, name: str, tree: Tree, epoch: int):
        self.name = name
        self.tree = tree
        self.epoch = epoch
        self._released = False

    def release(self) -> None:
        if not self._released:
            self._released = True
            obs.gauge("snapshot_pins").dec()

    def __enter__(self) -> "TreePin":
        return self

    def __exit__(self, *exc) -> None:
        self.release()


class TreeRegistry:
    """Named, shared :class:`~repro.trees.tree.Tree` instances with epochs.

    The registry is the service's document collection: trees are loaded
    once, their :class:`~repro.trees.index.TreeIndex` and compiled plans
    warm up on first use, and every subsequent request against the same
    name reuses them.  Registration is thread-safe; lookups return the
    live ``Tree`` object (trees are immutable once built).

    Live documents add an **epoch** per name: every (re)registration bumps
    it, and :meth:`mutate` publishes an edited copy-on-write snapshot under
    the next epoch.  Readers take a :class:`TreePin` — an atomic
    ``(tree, epoch)`` view — so a request in flight keeps answering against
    the exact snapshot it started with while writers race ahead.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._mutation_lock = threading.Lock()
        self._trees: dict[str, Tree] = {}
        self._epochs: dict[str, int] = {}
        self._listeners: list = []
        self._wal = None

    @property
    def wal(self):
        """The attached :class:`~repro.trees.wal.WriteAheadLog`, or ``None``."""
        return self._wal

    def attach_wal(self, wal) -> None:
        """Make every future (re)registration and mutation durable.

        From this point on, :meth:`register` and :meth:`mutate` append to
        ``wal`` *before* publishing (log-ahead).  Trees already registered
        but unknown to the log (e.g. loaded before a fresh WAL directory
        was opened) are baselined immediately with full ``register``
        records, so a later ``mutate`` record is never the first mention of
        its tree in the durable history.
        """
        with self._mutation_lock:
            self._wal = wal
            with self._lock:
                baseline = [
                    (name, self._trees[name], self._epochs[name])
                    for name in sorted(self._trees)
                    if name not in wal.known_trees
                ]
            for name, tree, epoch in baseline:
                wal.append_register(name, epoch, tree)

    def _wal_state(self) -> dict:
        """The ``{name: (tree, epoch)}`` snapshot the WAL folds into snapshots."""
        with self._lock:
            return {name: (tree, self._epochs[name]) for name, tree in self._trees.items()}

    def subscribe(self, listener) -> None:
        """Call ``listener(name)`` whenever ``name``'s tree (re)registers.

        The result cache subscribes here: a re-registration bumps the
        tree's cache epoch so stale values are never served.  Listeners
        run on the registering thread, outside the registry lock, and are
        exception-isolated: a raising listener is counted
        (``registry_listener_errors_total``) and skipped, never aborting
        the registration or starving later listeners.
        """
        with self._lock:
            self._listeners.append(listener)

    def register(
        self, name: str, tree: Tree, *, epoch: int | None = None, _wal_logged: bool = False
    ) -> int:
        """Publish ``tree`` under ``name`` and return the new epoch.

        ``epoch`` pins the published epoch explicitly (the sharded tier
        uses this to keep parent and shard epochs in lockstep); by default
        the name's epoch is bumped by one.  With a WAL attached, the
        registration is appended to the log *before* it publishes
        (``_wal_logged=True`` marks callers — :meth:`mutate`, the sharded
        mutator — that already wrote their own record).
        """
        if not name:
            raise ValueError("tree name must be non-empty")
        wal = self._wal
        if wal is not None and not _wal_logged:
            with self._mutation_lock:
                if epoch is None:
                    epoch = self.epoch(name) + 1
                wal.append_register(name, epoch, tree)
                return self.register(name, tree, epoch=epoch, _wal_logged=True)
        with self._lock:
            if epoch is None:
                epoch = self._epochs.get(name, 0) + 1
            self._trees[name] = tree
            self._epochs[name] = epoch
            listeners = list(self._listeners)
        for listener in listeners:
            try:
                listener(name)
            except Exception:
                obs.counter("registry_listener_errors_total").inc()
        if wal is not None:
            wal.maybe_snapshot(self._wal_state)
        return epoch

    def get(self, name: str) -> Tree:
        with self._lock:
            try:
                return self._trees[name]
            except KeyError:
                raise ValueError(
                    f"unknown tree {name!r}; registered: {sorted(self._trees) or '(none)'}"
                ) from None

    def epoch(self, name: str) -> int:
        """The current epoch of ``name`` (0 if never registered)."""
        with self._lock:
            return self._epochs.get(name, 0)

    def snapshot(self, name: str) -> tuple[Tree, int]:
        """The current ``(tree, epoch)`` pair, taken atomically."""
        with self._lock:
            try:
                return self._trees[name], self._epochs[name]
            except KeyError:
                raise ValueError(
                    f"unknown tree {name!r}; registered: {sorted(self._trees) or '(none)'}"
                ) from None

    def pin(self, name: str) -> TreePin:
        """Pin the current snapshot of ``name`` for a reader."""
        tree, epoch = self.snapshot(name)
        obs.gauge("snapshot_pins").inc()
        return TreePin(name, tree, epoch)

    def mutate(self, name: str, edit) -> tuple[Tree, int]:
        """Apply ``edit`` to ``name``'s tree and publish the result.

        The edit is an :mod:`repro.trees.mutate` edit object (or a JSON
        dict in its wire format).  The new snapshot is built copy-on-write
        with its ``TreeIndex`` maintained incrementally, then published
        atomically under the next epoch; concurrent readers holding pins
        (or plain ``get()`` results) keep their pre-edit snapshot.  Writers
        serialize on a mutation lock so edits never interleave.  Returns
        the published ``(tree, epoch)``.
        """
        from ..runtime import faults
        from ..trees.mutate import apply_edit_indexed, edit_from_json, edit_to_json

        if isinstance(edit, dict):
            edit = edit_from_json(edit)
        with self._mutation_lock:
            old = self.get(name)
            faults.check("trees.mutate")
            new_tree = apply_edit_indexed(old, edit)
            if self._wal is not None:
                # Log-ahead: the record is durable before the epoch is
                # visible.  A failed append (wal.append fault, disk error)
                # aborts here with the registry untouched.
                epoch = self.epoch(name) + 1
                self._wal.append_mutate(name, epoch, edit_to_json(edit), new_tree)
                self.register(name, new_tree, epoch=epoch, _wal_logged=True)
            else:
                epoch = self.register(name, new_tree)
        obs.counter("tree_mutations_total", kind=edit.kind).inc()
        return new_tree, epoch

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._trees)

    def __len__(self) -> int:
        with self._lock:
            return len(self._trees)
