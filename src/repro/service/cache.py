"""The cross-request semantic result cache (LRU + epochs + single-flight).

The service's request mix is heavily skewed — a few hot queries against a
few hot documents dominate (the Zipfian workload in bench_service.py) — and
PR 7's canonicalizer maps every syntactic variant of a query to one
*semantic key* (:func:`repro.xpath.optimizer.canonical_key`).  This module
caches finished ``ok`` values under ``(op, tree, semantic_key)`` so the
whole variant class evaluates once per tree generation:

* **LRU + size bounds** — entries are kept in access order and evicted
  past ``max_entries`` or ``max_total_bytes`` (values are JSON-safe by
  construction; sizes are estimated structurally).  Oversized single
  values are simply not admitted.
* **Per-tree epochs** — :meth:`invalidate` bumps the named tree's epoch
  and drops its entries.  A flight records the epoch it started under and
  a result is stored *only if the epoch is unchanged at completion*, so a
  re-registration racing an in-flight evaluation can never publish a value
  computed against the stale tree.  The service wires this to
  :meth:`TreeRegistry.subscribe <repro.service.api.TreeRegistry.subscribe>`.
* **Single-flight** — concurrent requests for one key collapse onto a
  leader; followers block on the flight and reuse the leader's published
  value.  A leader that fails (error, shed, budget trip) *abandons* the
  flight: followers wake and evaluate independently, so a transient fault
  never fans out, and nothing but a completed ``ok`` value is ever served
  from the cache.

Only successful values enter the cache; errors and sheds are never stored.
Counters land in ``service_result_cache_total{event=...}`` with events
``hit`` (served from store), ``miss`` (leader evaluates), ``wait_hit``
(follower reused a leader's value), ``store``, ``evict``, ``invalidate``,
and ``reject`` (value over the single-entry size bound).
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from .. import obs

__all__ = ["CacheKey", "Flight", "ResultCache"]

#: A cache key: (operation, tree name, semantic query key).
CacheKey = tuple[str, str, str]

#: Sentinel distinguishing "no published value" from a cached ``None``.
_MISS = object()


def approx_size(value) -> int:
    """A structural byte estimate for a JSON-safe value (cheap, recursive)."""
    if isinstance(value, str):
        return 48 + len(value)
    if isinstance(value, (list, tuple)):
        return 56 + sum(approx_size(item) for item in value)
    if isinstance(value, dict):
        return 64 + sum(
            approx_size(k) + approx_size(v) for k, v in value.items()
        )
    return 32  # ints, floats, bools, None


class Flight:
    """One in-progress evaluation of a cache key (the single-flight unit)."""

    __slots__ = ("key", "tree", "epoch", "_event", "_value")

    def __init__(self, key: CacheKey, tree: str, epoch: int) -> None:
        self.key = key
        self.tree = tree
        self.epoch = epoch
        self._event = threading.Event()
        self._value = _MISS

    def wait(self, timeout: float | None):
        """Block for the leader; the published value, or ``_MISS`` sentinel.

        Returns ``_MISS`` when the leader abandoned the flight (failed) or
        the timeout elapsed — either way the caller must evaluate itself.
        """
        self._event.wait(timeout)
        return self._value

    @staticmethod
    def is_miss(value) -> bool:
        return value is _MISS


class _Entry:
    __slots__ = ("value", "epoch", "nbytes")

    def __init__(self, value, epoch: int, nbytes: int) -> None:
        self.value = value
        self.epoch = epoch
        self.nbytes = nbytes


class ResultCache:
    """The semantic result cache (see module docstring).

    Thread-safe; one instance per :class:`~repro.service.workers.QueryService`
    (per shard in the sharded tier — tree-affine routing keeps every key's
    traffic on one shard, so shard-local caches lose nothing).
    """

    def __init__(
        self,
        *,
        max_entries: int = 512,
        max_total_bytes: int = 8 << 20,
        max_value_bytes: int = 1 << 20,
    ) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries!r}")
        self.max_entries = max_entries
        self.max_total_bytes = max_total_bytes
        self.max_value_bytes = max_value_bytes
        self._lock = threading.Lock()
        self._entries: OrderedDict[CacheKey, _Entry] = OrderedDict()
        self._total_bytes = 0
        self._epochs: dict[str, int] = {}
        self._flights: dict[CacheKey, Flight] = {}
        # Per-instance counts (what snapshot() reports) alongside the
        # process-wide obs counters (what the metrics export aggregates) —
        # two services in one process must not see each other's hit rates.
        events = ("hit", "miss", "wait_hit", "store", "evict", "invalidate", "reject")
        self._counts = {event: 0 for event in events}
        self._metrics = {
            event: obs.counter("service_result_cache_total", event=event)
            for event in events
        }

    def _count(self, event: str, amount: int = 1) -> None:
        # Most callers hold self._lock; the int add is GIL-atomic anyway,
        # and the obs counter locks itself.
        self._counts[event] += amount
        self._metrics[event].inc(amount)

    # -- epochs ------------------------------------------------------------

    def epoch(self, tree: str) -> int:
        with self._lock:
            return self._epochs.get(tree, 0)

    def invalidate(self, tree: str) -> int:
        """Bump ``tree``'s epoch and drop its entries; the new epoch.

        In-flight evaluations that started under the old epoch will refuse
        to store (the completion-time epoch check), so callers may mutate
        the registry at any time.
        """
        with self._lock:
            epoch = self._epochs.get(tree, 0) + 1
            self._epochs[tree] = epoch
            stale = [key for key in self._entries if key[1] == tree]
            for key in stale:
                entry = self._entries.pop(key)
                self._total_bytes -= entry.nbytes
            if stale:
                self._count("invalidate", len(stale))
        return epoch

    # -- the lookup protocol ----------------------------------------------

    def begin(self, key: CacheKey, tree: str) -> tuple[str, object]:
        """One cache interaction: ``("hit", value)``, ``("leader", flight)``,
        or ``("follower", flight)``.

        A leader MUST end its flight with :meth:`complete` or :meth:`abandon`
        (use ``try/finally``); a follower calls ``flight.wait(...)``.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self._count("hit")
                return ("hit", entry.value)
            flight = self._flights.get(key)
            if flight is not None:
                return ("follower", flight)
            flight = Flight(key, tree, self._epochs.get(tree, 0))
            self._flights[key] = flight
            self._count("miss")
            return ("leader", flight)

    def complete(self, flight: Flight, value) -> bool:
        """Leader finished OK: publish to followers, store if still fresh."""
        stored = False
        with self._lock:
            self._flights.pop(flight.key, None)
            if self._epochs.get(flight.tree, 0) == flight.epoch:
                stored = self._store_locked(flight.key, value, flight.epoch)
                # Publish to followers only when the value is still fresh;
                # on an epoch race they re-evaluate against the new tree.
                flight._value = value
        flight._event.set()
        return stored

    def abandon(self, flight: Flight) -> None:
        """Leader failed: wake followers empty-handed (they evaluate)."""
        with self._lock:
            self._flights.pop(flight.key, None)
        flight._event.set()

    def record_follower_reuse(self) -> None:
        self._count("wait_hit")

    # -- store internals ---------------------------------------------------

    def _store_locked(self, key: CacheKey, value, epoch: int) -> bool:
        nbytes = approx_size(value)
        if nbytes > self.max_value_bytes:
            self._count("reject")
            return False
        old = self._entries.pop(key, None)
        if old is not None:
            self._total_bytes -= old.nbytes
        self._entries[key] = _Entry(value, epoch, nbytes)
        self._total_bytes += nbytes
        self._count("store")
        while len(self._entries) > self.max_entries or (
            self._total_bytes > self.max_total_bytes and len(self._entries) > 1
        ):
            _, evicted = self._entries.popitem(last=False)
            self._total_bytes -= evicted.nbytes
            self._count("evict")
        return True

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def snapshot(self) -> dict:
        """JSON-safe stats for ``--stats`` / ``stats_snapshot()``."""
        with self._lock:
            entries = len(self._entries)
            total_bytes = self._total_bytes
            in_flight = len(self._flights)
        counts = dict(self._counts)
        lookups = counts["hit"] + counts["miss"]
        return {
            "entries": entries,
            "bytes": total_bytes,
            "in_flight": in_flight,
            "events": counts,
            "hit_rate": (counts["hit"] / lookups) if lookups else 0.0,
        }
