"""repro.service — the concurrent query-serving subsystem.

Everything below :mod:`repro.service` exists to turn the single-call
engines (XPath evaluation, FO(MTC) model checking, equivalence decision)
into a *workload* surface: many requests, shared documents, bounded
resources, and structured outcomes even when individual runs fail.  This
is the serving layer the ROADMAP's "heavy traffic" north star calls for,
built on the PR 3 governance primitives (budgets, the error taxonomy,
guarded degradation, fault injection).

The pieces, each in its own module:

* :class:`QueryRequest` / :class:`QueryResult` / :class:`TreeRegistry`
  (:mod:`~repro.service.api`) — the wire surface;
* :class:`BoundedRequestQueue` (:mod:`~repro.service.queue`) —
  backpressure and deadline-aware load shedding;
* :class:`RetryPolicy` (:mod:`~repro.service.retry`) — exponential
  backoff with full jitter for transient engine faults;
* :class:`CircuitBreaker` (:mod:`~repro.service.breaker`) — per-backend
  closed/open/half-open routing to the oracle engines;
* :class:`ResultCache` (:mod:`~repro.service.cache`) — the cross-request
  semantic result cache (LRU + per-tree epochs + single-flight), keyed on
  canonical query forms from :mod:`repro.xpath.optimizer`;
* :class:`ServiceStats` (:mod:`~repro.service.stats`) — aggregate
  telemetry;
* :class:`QueryService` (:mod:`~repro.service.workers`) — the worker
  pool tying it together;
* :class:`ShardedQueryService` (:mod:`~repro.service.shards`) — the
  multiprocess tier: shard processes over shared-memory tree indexes,
  same API, true multi-core scaling (pass ``--shards`` to ``repro
  batch``);
* :class:`ShardSupervisor` (:mod:`~repro.service.supervisor`) — parent-
  side self-healing for the shard pool: liveness/heartbeat detection,
  budgeted exponential-backoff respawn with full state resync, stranded-
  request re-dispatch, and terminal
  :class:`~repro.runtime.errors.ShardUnavailableError` degradation
  (enabled with ``max_restarts=N``; pair with a
  :class:`~repro.trees.wal.WriteAheadLog` on the registry for durable
  mutations and ``repro recover``).

Quickstart::

    from repro import parse_xml
    from repro.service import QueryRequest, QueryService, TreeRegistry

    registry = TreeRegistry()
    registry.register("doc", parse_xml("<a><b/><c><b/></c></a>"))
    with QueryService(registry, workers=4) as service:
        results = service.run_batch([
            QueryRequest(op="eval", query="<descendant[b]>", tree="doc"),
            QueryRequest(op="check", formula="exists x. b(x)", tree="doc"),
        ])

The CLI exposes the same machinery as ``repro batch`` (JSONL in, JSONL
out; see :mod:`repro.cli`).
"""

from .api import OPS, QueryRequest, QueryResult, TreePin, TreeRegistry
from .breaker import CircuitBreaker
from .cache import ResultCache
from .queue import BoundedRequestQueue
from .retry import RetryPolicy
from .shards import ShardConfig, ShardedQueryService
from .stats import ServiceStats
from .supervisor import RestartBudget, ShardSupervisor
from .workers import PendingResult, QueryService

__all__ = [
    "OPS",
    "BoundedRequestQueue",
    "CircuitBreaker",
    "PendingResult",
    "QueryRequest",
    "QueryResult",
    "QueryService",
    "RestartBudget",
    "ResultCache",
    "RetryPolicy",
    "ServiceStats",
    "ShardConfig",
    "ShardSupervisor",
    "ShardedQueryService",
    "TreePin",
    "TreeRegistry",
]
