"""The concurrent query service: worker pool, routing, retries, drain.

:class:`QueryService` multiplexes many requests over a shared
:class:`~repro.service.api.TreeRegistry`.  The life of a request:

1. **Admission** (:meth:`QueryService.submit`, caller's thread) — the
   request is validated, stamped with an absolute deadline (its own
   ``timeout`` or the service default), and enqueued on the bounded
   queue.  A full queue first sheds expired entries (each one resolves to
   a structured ``shed`` result — never a silent drop), then blocks the
   submitter (backpressure) or, non-blocking, raises
   :class:`~repro.runtime.errors.QueueFullError`.
2. **Dispatch** (worker thread) — a worker pops the request; if its
   deadline has already passed it is shed without touching an engine.
   Otherwise the worker derives a per-request
   :class:`~repro.runtime.budget.ExecutionBudget` *from the admission-time
   deadline* (queue wait counts against the request, exactly as a caller
   experiences it) and parses the query text under that envelope.
3. **Execution** — the per-family circuit breaker
   (:class:`~repro.service.breaker.CircuitBreaker`; ``xpath`` for
   eval/select, ``logic`` for check) decides the route.  Closed: the
   bitset fast path, with transient
   :class:`~repro.runtime.errors.EngineFaultError`\\ s retried under the
   full-jitter :class:`~repro.service.retry.RetryPolicy` and, when
   attempts are exhausted, one final PR 3-style degradation to the
   row-wise oracle (recorded in the process-wide
   :data:`repro.runtime.guarded.stats`).  Open: straight to the oracle.
   Half-open: one probe request tests the fast path and closes or
   re-opens the breaker.  ``equivalent`` requests run the decision
   procedures directly (no backend split, no breaker).
4. **Resolution** — exactly one :class:`~repro.service.api.QueryResult`
   per admitted request, always: the worker loop catches ``BaseException``
   around request processing, so even a service-layer bug resolves the
   request with a structured error instead of losing it.

Shutdown is graceful by default (:meth:`QueryService.shutdown` with
``drain=True``): the queue closes, workers finish everything already
queued, then exit.  ``drain=False`` sheds the un-run remainder — again as
structured results.  The service is a context manager; leaving the block
drains.
"""

from __future__ import annotations

import random
import threading
import time
from collections import deque
from dataclasses import dataclass, field

from .. import obs
from ..runtime import faults
from ..runtime.budget import ExecutionBudget
from ..runtime.errors import (
    BudgetExceededError,
    DeadlineExceededError,
    EngineFaultError,
    RequestShedError,
    ServiceClosedError,
    StaleEpochError,
    StoreCorruptError,
)
from .api import QueryRequest, QueryResult, TreePin, TreeRegistry, error_payload
from .breaker import CircuitBreaker
from .cache import Flight, ResultCache
from .queue import BoundedRequestQueue
from .retry import RetryPolicy
from .stats import ServiceStats

__all__ = ["PendingResult", "QueryService"]

#: Engine family per operation (None = no fast/oracle split, no breaker).
_FAMILY = {
    "eval": "xpath",
    "select": "xpath",
    "check": "logic",
    "equivalent": None,
    "mutate": None,
}

#: Epoch-lag histogram buckets: how many epochs behind a stamped read found
#: its local tree (0 = perfectly fresh; >0 only under re-share faults).
_EPOCH_LAG_BUCKETS = (0.0, 1.0, 2.0, 4.0, 8.0, 16.0)

#: Shared (per-alphabet) equivalence corpora; built once, read concurrently.
_corpus_cache: dict[tuple[str, ...], object] = {}
_corpus_lock = threading.Lock()


def _shared_corpus(alphabet: tuple[str, ...]):
    with _corpus_lock:
        corpus = _corpus_cache.get(alphabet)
        if corpus is None:
            from ..decision import standard_corpus

            corpus = standard_corpus(alphabet=alphabet)
            _corpus_cache[alphabet] = corpus
        return corpus


class PendingResult:
    """A one-shot, thread-safe slot for a request's eventual result."""

    __slots__ = ("_event", "_result", "_callbacks", "_lock")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._result: QueryResult | None = None
        self._callbacks: list = []
        self._lock = threading.Lock()

    def resolve(self, result: QueryResult) -> None:
        if self._event.is_set():  # pragma: no cover - defensive
            raise RuntimeError("result already resolved")
        with self._lock:
            self._result = result
            self._event.set()
            callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(result)

    def add_done_callback(self, callback) -> None:
        """Invoke ``callback(result)`` once resolved (immediately if done).

        Callbacks run on the resolving thread (a service worker), so they
        must be quick and must not raise — the sharded service uses this to
        push finished results onto the cross-process result queue without a
        waiter thread per request.
        """
        with self._lock:
            if not self._event.is_set():
                self._callbacks.append(callback)
                return
            result = self._result
        callback(result)

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> QueryResult:
        if not self._event.wait(timeout):
            raise TimeoutError(f"no result within {timeout}s")
        assert self._result is not None
        return self._result


@dataclass
class _Job:
    """One admitted request and its bookkeeping."""

    request: QueryRequest
    deadline: float | None
    submitted_at: float
    pending: PendingResult = field(default_factory=PendingResult)


# -- per-operation runners --------------------------------------------------
#
# ``_prepare(request)`` parses the request's query text once and returns a
# closure ``run(tree, budget, fast, backend=None) -> JSON-safe value``;
# parse errors surface at prepare time and are charged to the request as
# input errors.  Runners carry metadata for the optimizer/cache layer:
# ``run.family`` (engine family or None), ``run.expr`` (the parsed XPath
# AST for eval/select — what the cost model and canonicalizer consume),
# and ``run.cache_text`` (a ready-made semantic key for ops whose queries
# the canonicalizer does not cover).  ``backend`` overrides the static
# fast/oracle backend choice on the fast route (the cost model's pick).


def _parse_any(text: str):
    from ..xpath import XPathSyntaxError, parse_node, parse_path

    try:
        return parse_path(text)
    except XPathSyntaxError:
        return parse_node(text)


def _prepare_eval(request: QueryRequest):
    from ..xpath import parse_node
    from ..xpath.evaluator import Evaluator

    expr = parse_node(request.query)

    def run(tree, budget, fast, backend=None):
        chosen = backend or ("bitset" if fast else "sets")
        return sorted(Evaluator(tree, backend=chosen, budget=budget).nodes(expr))

    run.family = "xpath"
    run.expr = expr
    run.cache_text = None
    return run


def _prepare_select(request: QueryRequest):
    from ..xpath import parse_path
    from ..xpath.evaluator import Evaluator

    expr = parse_path(request.query)

    def run(tree, budget, fast, backend=None):
        chosen = backend or ("bitset" if fast else "sets")
        return sorted(Evaluator(tree, backend=chosen, budget=budget).image(expr, {0}))

    run.family = "xpath"
    run.expr = expr
    run.cache_text = None
    return run


def _prepare_check(request: QueryRequest):
    from ..logic import parse_formula
    from ..logic.ast import free_variables
    from ..logic.modelcheck import ModelChecker

    formula = parse_formula(request.formula)
    free = tuple(sorted(free_variables(formula)))
    if len(free) > 2:
        raise ValueError(f"expected at most 2 free variables, got {free}")

    def run(tree, budget, fast, backend=None):
        chosen = backend or ("bitset" if fast else "table")
        checker = ModelChecker(tree, backend=chosen, budget=budget)
        if not free:
            return checker.holds(formula)
        if len(free) == 1:
            return sorted(checker.node_set(formula, free[0]))
        return [list(pair) for pair in sorted(checker.pairs(formula, free[0], free[1]))]

    run.family = "logic"
    run.expr = None
    # No canonicalizer for FO(MTC) yet: the raw formula text is the key
    # (still a win — the hot-set workload repeats formulas verbatim).
    run.cache_text = f"F:{request.formula}"
    return run


def _prepare_equivalent(request: QueryRequest):
    from ..trees import to_xml
    from ..xpath import ast as xp
    from ..xpath import is_downward

    left = _parse_any(request.left)
    right = _parse_any(request.right)
    if isinstance(left, xp.NodeExpr) != isinstance(right, xp.NodeExpr):
        raise ValueError("cannot compare a node query with a path query")
    alphabet = tuple(request.alphabet)
    node_sort = isinstance(left, xp.NodeExpr)

    def run(tree, budget, fast, backend=None):
        from ..decision import (
            check_node_equivalence,
            check_path_equivalence,
            exact_equivalent,
            exact_path_equivalent,
        )

        if is_downward(left) and is_downward(right):
            exact = exact_equivalent if node_sort else exact_path_equivalent
            witness = exact(left, right, alphabet, budget)
            return {
                "equivalent": witness is None,
                "method": "exact",
                "witness": None if witness is None else to_xml(witness),
            }
        corpus = _shared_corpus(alphabet)
        compare = check_node_equivalence if node_sort else check_path_equivalence
        report = compare(left, right, corpus, budget)
        return {
            "equivalent": report.equivalent_on_corpus,
            "method": "corpus",
            "witness": (
                None
                if report.counterexample is None
                else str(report.counterexample)
            ),
        }

    run.family = None
    run.expr = None
    # Equivalence answers are tree-independent (corpus/exact decision);
    # key on the normalized question.
    run.cache_text = f"E:{request.left}\x00{request.right}\x00{request.alphabet}"
    return run


_PREPARERS = {
    "eval": _prepare_eval,
    "select": _prepare_select,
    "check": _prepare_check,
    "equivalent": _prepare_equivalent,
}


class QueryService:
    """A pool of workers serving queries over a tree registry (see above)."""

    def __init__(
        self,
        registry: TreeRegistry | None = None,
        *,
        workers: int = 4,
        queue_limit: int = 64,
        retry: RetryPolicy | None = None,
        breaker_threshold: int = 5,
        breaker_cooldown: float = 0.25,
        default_timeout: float | None = None,
        default_max_steps: int | None = None,
        default_max_nodes: int | None = None,
        service_name: str | None = None,
        plan_cache: bool = False,
        optimize: bool = False,
        result_cache: bool = False,
        cache_entries: int = 512,
        cache_bytes: int = 8 << 20,
        clock=time.monotonic,
        sleep=time.sleep,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers!r}")
        self.registry = registry if registry is not None else TreeRegistry()
        self.retry = retry if retry is not None else RetryPolicy()
        self.stats = ServiceStats(service=service_name)
        # The PR 7 adaptive layer, both off by default (opt-in per service):
        # ``optimize`` turns on canonical/semantic cache keys plus cost-based
        # sets-vs-bitset choice on the fast route; ``result_cache`` caches
        # finished ok values cross-request under semantic keys.
        if optimize:
            from ..xpath.optimizer import QueryOptimizer

            self.optimizer: "QueryOptimizer | None" = QueryOptimizer()
        else:
            self.optimizer = None
        self.result_cache: ResultCache | None = (
            ResultCache(max_entries=cache_entries, max_total_bytes=cache_bytes)
            if result_cache
            else None
        )
        if self.result_cache is not None:
            # Re-registering a tree bumps its epoch and drops its entries.
            self.registry.subscribe(self.result_cache.invalidate)
        # Optional prepared-plan cache: hot queries parse once per service
        # (the sharded tier enables this so each shard compiles each
        # distinct query exactly once; compiled *plans* are additionally
        # cached structurally on the per-tree TreeIndex).
        self._plan_cache: dict | None = {} if plan_cache else None
        self._plan_lock = threading.Lock()
        self._clock = clock
        self._sleep = sleep
        self._queue = BoundedRequestQueue(
            queue_limit,
            clock=clock,
            depth_gauge=obs.gauge("service_queue_depth", service=self.stats.service),
        )
        self._breakers = {
            family: CircuitBreaker(
                family,
                failure_threshold=breaker_threshold,
                cooldown=breaker_cooldown,
                clock=clock,
            )
            for family in ("xpath", "logic")
        }
        self._defaults = (default_timeout, default_max_steps, default_max_nodes)
        self._closed = False
        self._lifecycle = threading.Lock()
        self._threads = [
            threading.Thread(
                target=self._worker_loop,
                name=f"repro-worker-{i}",
                args=(f"worker-{i}", random.Random(2008 + i)),
                daemon=True,
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- admission ---------------------------------------------------------

    def submit(
        self,
        request: QueryRequest,
        *,
        block: bool = True,
        timeout: float | None = None,
    ) -> PendingResult:
        """Admit one request; returns the handle its result will arrive on.

        Structural problems with the request itself (unknown op, missing
        fields) resolve the handle immediately with an ``error`` result —
        the exception surface is reserved for *service* conditions
        (:class:`ServiceClosedError`, and :class:`QueueFullError` on
        non-blocking submission against a full queue).
        """
        if self._closed:
            raise ServiceClosedError("service is shutting down")
        now = self._clock()
        default_timeout = self._defaults[0]
        per_request = request.timeout if request.timeout is not None else default_timeout
        job = _Job(
            request,
            None if per_request is None else now + per_request,
            now,
        )
        self.stats.record_submitted()
        try:
            request.validate()
        except ValueError as exc:
            self._finish(job, self._error_result(job, exc, worker="admission"))
            return job.pending
        for expired in self._queue.put(job, block=block, timeout=timeout):
            self._shed(expired, "deadline passed while queued")
        return job.pending

    def run_batch(self, requests) -> list[QueryResult]:
        """Submit every request (blocking) and wait; results in input order."""
        handles = [self.submit(request) for request in requests]
        return [handle.result() for handle in handles]

    def map_stream(self, requests):
        """Lazily submit a request stream, yielding results in input order.

        Submission runs ahead of consumption only as far as the bounded
        queue allows, so an unbounded stream gets natural backpressure.
        """
        pending: deque[PendingResult] = deque()
        for request in requests:
            pending.append(self.submit(request))
            while pending and pending[0].done():
                yield pending.popleft().result()
        while pending:
            yield pending.popleft().result()

    # -- lifecycle ---------------------------------------------------------

    def shutdown(self, *, drain: bool = True, timeout: float | None = None) -> None:
        """Stop admissions and wind the pool down.

        ``drain=True`` (the default, and what ``with QueryService(...)``
        does) lets workers finish everything already queued; ``drain=False``
        sheds the un-run remainder with structured results.  Idempotent.
        """
        with self._lifecycle:
            self._closed = True
        self._queue.close()
        if not drain:
            for job in self._queue.drain():
                self._shed(job, "service shut down before execution")
        for thread in self._threads:
            thread.join(timeout)

    def close(self) -> None:
        """Non-graceful shutdown: shed the un-run remainder immediately."""
        self.shutdown(drain=False)

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown(drain=True)

    @property
    def breakers(self) -> dict[str, CircuitBreaker]:
        return dict(self._breakers)

    def stats_snapshot(self) -> dict:
        snapshot = self.stats.snapshot(self._breakers)
        if self.result_cache is not None:
            snapshot["result_cache"] = self.result_cache.snapshot()
        if self.optimizer is not None:
            snapshot["optimizer"] = {
                "rates": self.optimizer.cost.rates(),
                "choices": self.optimizer.cost.choices(),
            }
        return snapshot

    # -- worker side -------------------------------------------------------

    def _worker_loop(self, name: str, rng: random.Random) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return
            with obs.span(
                "service.request", op=job.request.op, worker=name
            ) as span:
                tracer = obs.current_tracer()
                if tracer is not None:
                    # Queue wait starts on the submitter's thread, so a
                    # context manager cannot bracket it; attach the already-
                    # elapsed duration as a closed child span.
                    tracer.record(
                        "service.queue.wait",
                        wall=self._clock() - job.submitted_at,
                    )
                try:
                    result = self._process(job, name, rng)
                except BaseException as exc:  # the no-lost-requests backstop
                    result = self._error_result(job, exc, worker=name)
                span.set(status=result.status, routed=result.routed)
            self._finish(job, result)

    def _process(self, job: _Job, worker: str, rng: random.Random) -> QueryResult:
        now = self._clock()
        if job.deadline is not None and now >= job.deadline:
            return self._shed_result(job, "deadline passed while queued", worker)
        request = job.request
        _, default_steps, default_nodes = self._defaults
        max_steps = request.max_steps if request.max_steps is not None else default_steps
        max_nodes = request.max_nodes if request.max_nodes is not None else default_nodes
        budget = None
        if job.deadline is not None or max_steps is not None or max_nodes is not None:
            budget = ExecutionBudget.from_deadline(
                job.deadline, max_steps, max_nodes, clock=self._clock
            )
        if request.op == "mutate":
            return self._mutate(job, budget, worker, rng)
        pin = None
        try:
            attempts = 0
            while True:
                attempts += 1
                try:
                    tree, pin = self._resolve_tree(request)
                    plan = self._prepare(request)
                except (ValueError, TypeError, StaleEpochError, StoreCorruptError) as exc:
                    return self._error_result(job, exc, worker=worker)
                except EngineFaultError as exc:
                    # A transient fault resolving the document — the
                    # ``store.load`` site firing on a cold tree.  The failed
                    # load published nothing (and woke any single-flight
                    # waiters), so re-resolving is safe; corrupt files and
                    # staleness are excluded above because retrying cannot
                    # change them.
                    if attempts >= self.retry.max_attempts:
                        return self._error_result(job, exc, worker=worker)
                    delay = self.retry.delay(attempts, rng)
                    if budget is not None and budget.remaining_time is not None:
                        delay = min(delay, max(0.0, budget.remaining_time))
                    if delay > 0:
                        with obs.span("service.retry.backoff", delay=delay):
                            self._sleep(delay)
                    continue
                break
            return self._execute(
                job, plan, tree, budget, worker, rng, pin, attempts - 1
            )
        finally:
            if pin is not None:
                pin.release()

    _PLAN_CACHE_LIMIT = 1024

    def _prepare(self, request: QueryRequest):
        """The prepared runner for ``request``, via the plan cache if on.

        Prepared runners close over parsed ASTs only (no per-request or
        per-tree state), so they are safe to share across requests and
        worker threads.
        """
        if self._plan_cache is None:
            return _PREPARERS[request.op](request)
        key = (
            request.op,
            request.query,
            request.formula,
            request.left,
            request.right,
            request.alphabet,
        )
        with self._plan_lock:
            plan = self._plan_cache.get(key)
        if plan is not None:
            return plan
        plan = _PREPARERS[request.op](request)
        with self._plan_lock:
            if len(self._plan_cache) >= self._PLAN_CACHE_LIMIT:
                self._plan_cache.pop(next(iter(self._plan_cache)))
            self._plan_cache[key] = plan
        return plan

    def _resolve_tree(self, request: QueryRequest) -> tuple:
        """The request's document as ``(tree, pin)``.

        Named trees are *pinned* — the worker holds an atomic
        ``(tree, epoch)`` snapshot for the request's whole execution, so a
        concurrent mutation never tears its view.  Requests stamped with a
        ``min_epoch`` (the sharded tier's dispatch-time epoch) additionally
        verify freshness: a local snapshot older than the stamp raises
        :class:`StaleEpochError`, the structured retryable signal the
        parent heals by re-sharing and re-dispatching.
        """
        if request.op == "equivalent":
            return None, None
        if request.xml is not None:
            from ..trees import parse_xml

            return parse_xml(request.xml), None
        try:
            pin = self.registry.pin(request.tree)
        except ValueError:
            if request.min_epoch is not None:
                # The dispatcher stamped an epoch, so the tree exists
                # upstream — this replica just never (successfully)
                # attached it.  Surface the healable staleness signal,
                # not an "unknown tree" dead end.
                raise StaleEpochError(request.tree, 0, request.min_epoch)
            raise
        if request.min_epoch is not None:
            lag = request.min_epoch - pin.epoch
            obs.histogram("tree_epoch_lag", buckets=_EPOCH_LAG_BUCKETS).observe(
                float(max(0, lag))
            )
            if lag > 0:
                pin.release()
                raise StaleEpochError(request.tree, pin.epoch, request.min_epoch)
        return pin.tree, pin

    def _mutate(self, job: _Job, budget, worker: str, rng: random.Random) -> QueryResult:
        """Apply one live-document edit, with transient-fault retries.

        Mutations bypass the breaker/cache machinery — there is no oracle
        to degrade to and nothing cacheable — but keep the retry policy:
        an injected (or real) :class:`EngineFaultError` at the
        ``trees.mutate`` boundary is transient by contract, and the
        registry's mutation lock guarantees a failed attempt published
        nothing, so re-applying is safe.
        """
        from ..trees.mutate import edit_from_json

        request = job.request
        try:
            edit = edit_from_json(request.edit)
        except (ValueError, TypeError) as exc:
            return self._error_result(job, exc, worker=worker)
        attempts = 0
        retries = 0
        while True:
            attempts += 1
            if (
                budget is not None
                and budget.remaining_time is not None
                and budget.remaining_time <= 0
            ):
                exc: BaseException = DeadlineExceededError(
                    f"deadline passed before mutation of {request.tree!r} applied"
                )
                return self._error_result(job, exc, worker=worker, retries=retries)
            try:
                with obs.span(
                    "service.mutate", tree=request.tree, attempt=attempts
                ):
                    new_tree, epoch = self.registry.mutate(request.tree, edit)
            except (ValueError, TypeError) as exc:
                return self._error_result(job, exc, worker=worker, retries=retries)
            except EngineFaultError as exc:
                if attempts < self.retry.max_attempts:
                    delay = self.retry.delay(attempts, rng)
                    if budget is not None and budget.remaining_time is not None:
                        delay = min(delay, max(0.0, budget.remaining_time))
                    if delay > 0:
                        with obs.span("service.retry.backoff", delay=delay):
                            self._sleep(delay)
                    retries += 1
                    continue
                return self._error_result(job, exc, worker=worker, retries=retries)
            return self._ok_result(
                job,
                {
                    "tree": request.tree,
                    "epoch": epoch,
                    "kind": edit.kind,
                    "size": new_tree.size,
                },
                worker=worker,
                retries=retries,
                routed="mutate",
            )

    def _execute(
        self,
        job,
        plan,
        tree,
        budget,
        worker,
        rng,
        pin: TreePin | None = None,
        base_retries: int = 0,
    ) -> QueryResult:
        """One request through the cache, then the retry state machine.

        With the result cache on, requests for one semantic key collapse:
        a stored value is served directly (``routed="cache"``), concurrent
        identical requests single-flight behind a leader, and a leader that
        fails abandons the flight so followers evaluate independently (a
        transient fault never fans out through the cache).
        """
        cache = self.result_cache
        key = None
        if cache is not None and job.request.xml is None:
            key = self._cache_key(job.request, plan)
        if key is None:
            return self._attempt(job, plan, tree, budget, worker, rng, base_retries)
        tree_name = job.request.tree or ""
        kind, payload = cache.begin(key, tree_name)
        if kind == "hit":
            return self._ok_result(
                job, payload, worker=worker, retries=base_retries, routed="cache"
            )
        if kind == "leader":
            flight = payload
            settled = False
            try:
                result = self._attempt(
                    job, plan, tree, budget, worker, rng, base_retries
                )
                # Store only if the tree is still at the pinned epoch: a
                # mutation landing between pin and cache.begin() would
                # otherwise let this pre-edit value slip in under the
                # post-edit epoch (cache.complete's own epoch check only
                # covers mutations after begin()).
                if result.status == "ok" and (
                    pin is None or self.registry.epoch(pin.name) == pin.epoch
                ):
                    cache.complete(flight, result.value)
                    settled = True
                return result
            finally:
                if not settled:
                    cache.abandon(flight)
        # Follower: wait for the leader (bounded by our own deadline), then
        # either reuse its published value or evaluate independently.
        flight = payload
        timeout = budget.remaining_time if budget is not None else None
        value = flight.wait(timeout)
        if not Flight.is_miss(value):
            cache.record_follower_reuse()
            return self._ok_result(
                job, value, worker=worker, retries=base_retries, routed="cache"
            )
        return self._attempt(job, plan, tree, budget, worker, rng, base_retries)

    def _cache_key(self, request: QueryRequest, plan) -> tuple | None:
        """The semantic cache key for ``request``, or None if uncacheable."""
        text = getattr(plan, "cache_text", None)
        if text is None:
            expr = getattr(plan, "expr", None)
            if expr is None:
                return None
            if self.optimizer is not None:
                _, text = self.optimizer.prepare(expr)
            else:
                from ..xpath.optimizer import canonical_key

                text = canonical_key(expr)
        return (request.op, request.tree or "", text)

    def _attempt(
        self, job, plan, tree, budget, worker, rng, base_retries: int = 0
    ) -> QueryResult:
        """The routing/retry/fallback state machine for one request.

        ``base_retries`` carries retries already spent *resolving* the
        document (a transient cold-load fault) into the result's count.
        """
        family = _FAMILY[job.request.op]
        breaker = self._breakers.get(family) if family else None
        attempts = 0
        retries = base_retries
        while True:
            attempts += 1
            route = breaker.acquire() if breaker is not None else "direct"
            fast = route in ("fast", "probe")
            # Cost-based backend choice, fast route only: the breaker's
            # degraded/oracle routes stay pinned to the row-wise engines
            # (they are the known-good fallback, not a tuning knob).
            chosen = None
            if (
                fast
                and self.optimizer is not None
                and getattr(plan, "family", None) == "xpath"
                and tree is not None
            ):
                chosen = self.optimizer.choose(plan.expr, tree)
            started = self._clock()
            try:
                with obs.span(
                    "service.attempt", budget=budget, route=route, attempt=attempts
                ):
                    if fast:
                        faults.check("service.worker")
                    value = plan(tree, budget, fast, chosen)
            except DeadlineExceededError as exc:
                return self._error_result(job, exc, worker=worker, retries=retries)
            except BudgetExceededError as exc:
                return self._error_result(job, exc, worker=worker, retries=retries)
            except (ValueError, TypeError) as exc:
                # Input errors are backend-independent; retrying hides them.
                return self._error_result(job, exc, worker=worker, retries=retries)
            except Exception as exc:
                if fast:
                    breaker.record_failure()
                    transient = isinstance(exc, EngineFaultError)
                    if transient and attempts < self.retry.max_attempts:
                        delay = self.retry.delay(attempts, rng)
                        if budget is not None and budget.remaining_time is not None:
                            delay = min(delay, max(0.0, budget.remaining_time))
                        if delay > 0:
                            with obs.span("service.retry.backoff", delay=delay):
                                self._sleep(delay)
                        retries += 1
                        continue
                    return self._degrade(
                        job, plan, tree, budget, worker, retries, exc
                    )
                # The oracle route itself failed: no slower engine remains.
                return self._error_result(job, exc, worker=worker, retries=retries)
            else:
                if fast:
                    breaker.record_success()
                    if chosen is not None:
                        # Calibrate the cost model with the observed run.
                        self.optimizer.observe(
                            chosen, plan.expr, tree, self._clock() - started
                        )
                if fast:
                    routed = chosen or "bitset"
                else:
                    routed = "decision" if family is None else "oracle"
                return self._ok_result(
                    job, value, worker=worker, retries=retries, routed=routed
                )

    def _degrade(self, job, plan, tree, budget, worker, retries, cause) -> QueryResult:
        """Attempts exhausted on the fast path: one PR 3-style oracle run."""
        from ..runtime.guarded import stats as fallback_stats

        fallback_stats.record(cause)
        if budget is not None:
            budget.reset_steps()
        try:
            with obs.span(
                "service.degrade", budget=budget, error=type(cause).__name__
            ):
                value = plan(tree, budget, fast=False)
        except Exception as exc:  # the oracle failed too: structured error
            return self._error_result(job, exc, worker=worker, retries=retries)
        return self._ok_result(
            job, value, worker=worker, retries=retries, routed="oracle", fallback=True
        )

    # -- result shaping ----------------------------------------------------

    def _finish(self, job: _Job, result: QueryResult) -> None:
        # Stats first, then resolve: resolution runs done-callbacks (a shard
        # uses one to ship the result to its parent), and anyone who has
        # *seen* the result must find it already counted in a snapshot.
        self.stats.record_result(result)
        job.pending.resolve(result)

    def _shed(self, job: _Job, reason: str) -> None:
        self._finish(job, self._shed_result(job, reason, worker="queue"))

    def _shed_result(self, job: _Job, reason: str, worker: str) -> QueryResult:
        waited = self._clock() - job.submitted_at
        exc = RequestShedError(f"{reason} (waited {waited:.3f}s)")
        return QueryResult(
            id=job.request.id,
            op=job.request.op,
            status="shed",
            error=error_payload(exc),
            routed="none",
            latency=waited,
            worker=worker,
        )

    def _error_result(
        self, job: _Job, exc: BaseException, *, worker: str, retries: int = 0
    ) -> QueryResult:
        return QueryResult(
            id=job.request.id,
            op=job.request.op,
            status="error",
            error=error_payload(exc),
            retries=retries,
            routed="none",
            latency=self._clock() - job.submitted_at,
            worker=worker,
        )

    def _ok_result(
        self,
        job: _Job,
        value,
        *,
        worker: str,
        retries: int,
        routed: str,
        fallback: bool = False,
    ) -> QueryResult:
        return QueryResult(
            id=job.request.id,
            op=job.request.op,
            status="ok",
            value=value,
            retries=retries,
            fallback=fallback,
            routed=routed,
            latency=self._clock() - job.submitted_at,
            worker=worker,
        )
