"""Retry policy: exponential backoff with full jitter.

Transient :class:`~repro.runtime.errors.EngineFaultError`\\ s are worth
retrying — the canonical example is an injected fault armed with a count,
standing in for a bug tripped by one run's cache state — but naive
fixed-delay retries from a pool of workers synchronize into retry storms.
The policy here is the standard *full jitter* scheme: attempt *k* (1-based)
sleeps ``uniform(0, min(max_delay, base_delay · multiplier^(k-1)))``, so
the expected delay grows exponentially while the actual delays decorrelate
across workers.

The policy object is immutable and holds no randomness of its own: callers
pass their ``random.Random`` (each service worker owns a seeded one), which
keeps tests deterministic and workers uncorrelated.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..runtime.errors import EngineFaultError

__all__ = ["RetryPolicy", "is_transient"]


def is_transient(exc: BaseException) -> bool:
    """Is this failure worth retrying on the same backend?

    Engine faults are; resource-budget trips, deadline misses, and input
    errors are not (they would fail identically, only later).
    """
    return isinstance(exc, EngineFaultError)


@dataclass(frozen=True)
class RetryPolicy:
    """How often and how patiently to retry a transient fast-path failure.

    ``max_attempts`` counts *total* tries, so ``max_attempts=3`` means one
    initial try plus at most two retries; ``max_attempts=1`` disables
    retrying entirely.
    """

    max_attempts: int = 3
    base_delay: float = 0.005
    max_delay: float = 0.1
    multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts!r}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier!r}")

    def ceiling(self, attempt: int) -> float:
        """The exponential cap for the sleep after 1-based ``attempt``."""
        if attempt < 1:
            raise ValueError(f"attempt is 1-based, got {attempt!r}")
        return min(self.max_delay, self.base_delay * self.multiplier ** (attempt - 1))

    def delay(self, attempt: int, rng: random.Random) -> float:
        """A full-jitter sleep: uniform over ``[0, ceiling(attempt)]``."""
        return rng.uniform(0.0, self.ceiling(attempt))
