"""The multiprocess execution tier: shard pool over shared-memory indexes.

:class:`ShardedQueryService` presents the same surface as
:class:`~repro.service.workers.QueryService` — ``submit`` / ``run_batch`` /
``map_stream`` / ``shutdown`` / ``stats_snapshot`` / context manager — but
executes requests in **shard processes**, so the bitset engines' single-core
wins compound across cores instead of serializing on the GIL.

How the pieces fit:

* **Shared-memory tree indexes** — at startup (and on late
  :meth:`register`) every registered tree's
  :class:`~repro.trees.index.TreeIndex` is serialized once
  (:func:`repro.trees.share.dump_index`) into a
  :class:`multiprocessing.shared_memory.SharedMemory` segment.  Shards
  attach the segment read-only and reconstruct masks via ``int.from_bytes``
  over mapped memoryview slices (lazily for the quadratic tables) — no
  pickled trees cross a pipe, and the segment pages are shared by every
  shard.
* **Routing** — requests naming a registered tree go to
  ``crc32(tree) % shards`` (all requests for one document hit one shard, so
  its compiled-plan caches stay hot); inline-``xml`` and ``equivalent``
  requests round-robin.  Only the small request dict crosses the pipe —
  plan *keys*, never plans: each shard parses a hot query once (the local
  service's plan cache) and compiles it once per tree (the structural
  caches on the mapped ``TreeIndex``).
* **Per-shard PR 3–5 semantics** — each shard process runs a full local
  :class:`QueryService`: per-request
  :class:`~repro.runtime.budget.ExecutionBudget` deadlines (the parent
  ships the *remaining* timeout at dispatch, so cross-process clock skew
  cannot extend a deadline), bounded queue, retries with jitter,
  per-engine-family circuit breakers, and fault injection (``REPRO_FAULTS``
  propagates through the environment under both ``fork`` and ``spawn``;
  :meth:`arm_faults` broadcasts mid-run arms for chaos drills).
* **Admission stays in the parent** — a
  :class:`~repro.service.queue.BoundedRequestQueue` per shard gives the
  same backpressure/shedding behaviour at submit time, and an in-flight
  cap per shard keeps the pipe from buffering unboundedly.
* **Live documents** — ``mutate`` requests run on a parent-side writer
  thread (the parent owns the registry and the segments): the edit is
  applied copy-on-write with incremental index maintenance
  (:mod:`repro.trees.mutate`), the new index is serialized into a *fresh*
  segment, the ``(segment, epoch)`` pair is broadcast to every shard, and
  only then is the new epoch published to the parent registry
  (broadcast-before-publish).  Reads against named trees are stamped with
  the registry epoch at dispatch; a shard whose broadcast was dropped (the
  ``service.reshare`` fault site) answers with a structured
  :class:`~repro.runtime.errors.StaleEpochError`, which the parent heals
  by re-sharing the current segment to that shard and re-dispatching —
  bounded retries, after which the retryable error reaches the caller.
  Old segments stay attached in the shards, so in-flight requests pinned
  to a pre-edit epoch keep their snapshot.
* **Stats reconciliation** — shards ship their
  :class:`~repro.service.stats.ServiceStats` snapshot plus a metrics-
  registry *delta* (:func:`repro.obs.diff_state`, so ``fork``-inherited
  counts are not double-reported) back to the parent, which merges raw
  histogram reservoirs — never percentiles — via
  :func:`repro.obs.merge_states` /
  :meth:`~repro.service.stats.ServiceStats.merge_snapshots`.

Failure containment: a shard process that dies mid-run resolves every
request routed to it with a structured
:class:`~repro.runtime.errors.ShardCrashedError` result (the no-lost-
requests invariant, cross-process), and later requests for that shard fail
fast.  No IPC lock is ever shared between a killable shard and anyone who
must survive it: each shard reads its own request ``SimpleQueue`` (swapped
on respawn) and writes its own single-writer result pipe, so a SIGKILL
landing mid-send tears at most that shard's final frame — read as EOF by
the parent's collector, which multiplexes all pipes with
:func:`multiprocessing.connection.wait` — and can never wedge a sibling
or a replacement on a lock the corpse still holds.  Shard processes are daemons, the service registers an ``atexit``
kill, and :meth:`close` (non-graceful) terminates children immediately —
no orphan survives a ``KeyboardInterrupt`` or test teardown.

**Supervision** (``max_restarts=N``): instead of marking a crashed shard
dead forever, a :class:`~repro.service.supervisor.ShardSupervisor` monitor
thread detects the death (liveness poll + optional heartbeat staleness),
respawns the process with exponential backoff under a rolling restart
budget, resyncs it completely (every current RTIX segment at its current
epoch, tracked fault arms re-delivered), and re-dispatches the requests
that were in flight on the casualty — callers see one slower answer, not
an error.  Requests arriving while the replacement spawns wait (bounded by
their own deadlines) rather than failing fast.  Only when the budget is
exhausted does the shard degrade terminally: everything routed to it
resolves with :class:`~repro.runtime.errors.ShardUnavailableError`.

**Durability**: attach a :class:`~repro.trees.wal.WriteAheadLog` to the
parent registry (``registry.attach_wal``) and every mutation appends its
edit record — log-ahead, inside the mutation lock, before the broadcast
and the epoch publish — so ``repro recover DIR`` folds the history back
after a crash of the *parent* itself.
"""

from __future__ import annotations

import atexit
import itertools
import os
import random
import threading
import time
import zlib
from collections import deque
from dataclasses import asdict, dataclass
from multiprocessing import connection as _mp_connection
from multiprocessing import get_context, shared_memory

from .. import obs
from ..runtime import faults
from ..runtime.errors import (
    DeadlineExceededError,
    EngineFaultError,
    InjectedFaultError,
    RequestShedError,
    ServiceClosedError,
    ShardCrashedError,
    ShardUnavailableError,
)
from ..trees.share import detach_tree, dump_index, load_tree
from ..trees.index import tree_index
from .api import QueryRequest, QueryResult, TreeRegistry, error_payload
from .queue import BoundedRequestQueue
from .retry import RetryPolicy
from .stats import ServiceStats
from .workers import PendingResult, QueryService

__all__ = ["ShardConfig", "ShardedQueryService"]

#: Fields of the request dict shipped to a shard (QueryRequest dataclass).
_REQUEST_FIELDS = tuple(QueryRequest.__dataclass_fields__)


@dataclass(frozen=True)
class ShardConfig:
    """Picklable per-shard configuration (crosses the ``spawn`` boundary)."""

    shard_id: int
    service_name: str
    workers: int = 1
    queue_limit: int = 64
    retry: RetryPolicy | None = None
    breaker_threshold: int = 5
    breaker_cooldown: float = 0.25
    default_max_steps: int | None = None
    default_max_nodes: int | None = None
    optimize: bool = False
    result_cache: bool = False
    cache_entries: int = 512
    cache_bytes: int = 8 << 20
    heartbeat_interval: float = 0.5
    #: Disk-backed store mode: shards mmap the parent's store files
    #: directly (read-only) instead of receiving re-shared segments.
    store_dir: str | None = None
    resident_budget: int | None = None


def _attach_segment(shm_name: str) -> shared_memory.SharedMemory:
    """Attach a segment without registering it with the resource tracker.

    The parent owns segment lifetime (it unlinks on shutdown), and shard
    children share the parent's tracker process under both ``fork`` and
    ``spawn`` — so a child's attach-time registration (unconditional before
    Python 3.13's ``track=False``) followed by an unregister would erase
    the *parent's* entry and make the parent's eventual ``unlink`` scream.
    Suppressing registration for the duration of the attach is the
    documented workaround.
    """
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=shm_name)
    finally:
        resource_tracker.register = original


def _wire_result(result: QueryResult, shard_id: int) -> dict:
    payload = result.to_json()
    payload["worker"] = f"shard-{shard_id}/{result.worker}"
    return payload


def _shard_main(shard_id, request_q, result_conn, segments, config) -> None:
    """Entry point of one shard process (module-level for ``spawn``).

    ``result_conn`` is this shard's *private* result pipe: no IPC lock is
    shared with any other process, so a SIGKILL landing mid-send can only
    tear this shard's own frame (the parent reads the tear as EOF), never
    wedge a lock a sibling or a respawned replacement would need.  The
    send lock below is an ordinary in-process :class:`threading.Lock` —
    it serializes this shard's own threads (workers' done-callbacks, the
    heartbeat) and dies with the process.
    """
    import signal

    send_lock = threading.Lock()

    def emit(message) -> None:
        with send_lock:
            result_conn.send(message)

    # The parent coordinates shutdown (stop message, then SIGTERM): a
    # terminal Ctrl-C hits the whole process group, and a shard that dies
    # on the interrupt before the parent resolves its requests would turn
    # a clean close into a crash report.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass

    # Everything recorded before this instant (fork-inherited counters
    # included) belongs to the parent; the shard reports only its delta.
    base_state = obs.REGISTRY.snapshot()

    registry = TreeRegistry()
    if config.store_dir:
        # Read-only: the parent is the single store writer (it packs before
        # broadcasting a drop), so a shard never races it on a file; cold
        # trees mmap straight from disk on first touch, under this shard's
        # own resident budget.
        from ..trees.store import TreeStore

        registry.attach_store(
            TreeStore(config.store_dir),
            resident_budget=config.resident_budget,
            readonly=True,
        )
    attached: list[tuple[shared_memory.SharedMemory, object]] = []

    # Liveness heartbeat: a cheap periodic "hb" on the result queue lets
    # the parent's supervisor distinguish a hung shard (alive but silent)
    # from a merely busy one — workers run queries, this thread only beats.
    hb_stop = threading.Event()

    def heartbeat_loop() -> None:
        while not hb_stop.wait(config.heartbeat_interval):
            try:
                emit(("hb", shard_id))
            except Exception:  # parent is gone
                return

    heartbeat = None
    if config.heartbeat_interval and config.heartbeat_interval > 0:
        heartbeat = threading.Thread(
            target=heartbeat_loop, name=f"repro-shard-{shard_id}-hb", daemon=True
        )
        heartbeat.start()

    def attach(name: str, shm_name: str, nbytes: int, epoch: int) -> None:
        # Pre-mutation segments stay attached (and their trees alive) for
        # the rest of the shard's life: in-flight requests pinned to an
        # older epoch keep reading the snapshot they started with.
        shm = _attach_segment(shm_name)
        tree = load_tree(memoryview(shm.buf)[:nbytes])
        registry.register(name, tree, epoch=epoch)
        attached.append((shm, tree))

    service = None
    try:
        for name, shm_name, nbytes, epoch in segments:
            try:
                attach(name, shm_name, nbytes, epoch)
            except FileNotFoundError:
                # A mutation raced this shard's startup and unlinked the
                # spec'd segment.  Its replacement was broadcast to our
                # request queue before the unlink, so skipping is safe:
                # the newer epoch registers when the loop below drains it.
                continue
        service = QueryService(
            registry,
            workers=config.workers,
            # Sized so the parent's in-flight cap (queue_limit + workers)
            # can never block the intake thread on a full local queue.
            queue_limit=config.queue_limit + config.workers,
            retry=config.retry,
            breaker_threshold=config.breaker_threshold,
            breaker_cooldown=config.breaker_cooldown,
            default_max_steps=config.default_max_steps,
            default_max_nodes=config.default_max_nodes,
            service_name=config.service_name,
            plan_cache=True,
            # Tree-affine routing means every key's traffic lands on one
            # shard, so shard-local caches see the full hit-rate benefit.
            optimize=config.optimize,
            result_cache=config.result_cache,
            cache_entries=config.cache_entries,
            cache_bytes=config.cache_bytes,
        )

        def on_done(seq: int):
            def callback(result: QueryResult) -> None:
                emit(("res", shard_id, seq, _wire_result(result, shard_id)))

            return callback

        def send_stats(token) -> None:
            emit(
                (
                    "stats",
                    shard_id,
                    token,
                    service.stats_snapshot(),
                    obs.diff_state(base_state, obs.REGISTRY.snapshot()),
                )
            )

        while True:
            try:
                message = request_q.get()
            except (EOFError, OSError):  # parent is gone: nothing to serve
                return
            kind = message[0]
            if kind == "req":
                seq, payload = message[1], message[2]
                try:
                    request = QueryRequest(**payload)
                    handle = service.submit(request)
                except BaseException as exc:
                    emit(
                        (
                            "res",
                            shard_id,
                            seq,
                            {
                                "id": payload.get("id", ""),
                                "op": payload.get("op", "?"),
                                "status": "error",
                                "error": error_payload(exc),
                                "routed": "none",
                                "worker": f"shard-{shard_id}/intake",
                            },
                        )
                    )
                    continue
                handle.add_done_callback(on_done(seq))
            elif kind == "tree":
                try:
                    attach(message[1], message[2], message[3], message[4])
                except BaseException:  # pragma: no cover - defensive
                    pass  # requests for it will fail with "unknown tree"
            elif kind == "drop":
                # The parent packed a new generation and invalidated ours:
                # forget the resident copy so the next stamped read reloads
                # the (already current) store file.  In-flight pins keep
                # their snapshot — only the registry's reference drops.
                registry.refresh(message[1], message[2])
            elif kind == "faults":
                faults.arm(message[1], message[2])
            elif kind == "disarm":
                faults.disarm(message[1])
            elif kind == "stats":
                send_stats(message[1])
            elif kind == "stop":
                service.shutdown(drain=message[1])
                send_stats(None)
                emit(("bye", shard_id))
                return
    finally:
        hb_stop.set()
        if service is not None:
            try:
                service.shutdown(drain=False)
            except Exception:  # pragma: no cover - defensive
                pass
        for shm, tree in attached:
            try:
                detach_tree(tree)
                shm.close()
            except Exception:  # pragma: no cover - defensive
                pass


class _ShardJob:
    """One admitted request in the parent (mirrors ``workers._Job``)."""

    __slots__ = (
        "request",
        "deadline",
        "submitted_at",
        "pending",
        "shard",
        "reshare_retries",
    )

    def __init__(self, request, deadline, submitted_at, shard):
        self.request = request
        self.deadline = deadline
        self.submitted_at = submitted_at
        self.shard = shard
        self.pending = PendingResult()
        self.reshare_retries = 0


class ShardedQueryService:
    """A pool of shard processes serving queries over shared tree indexes."""

    def __init__(
        self,
        registry: TreeRegistry | None = None,
        *,
        shards: int = 2,
        start_method: str | None = None,
        workers_per_shard: int = 1,
        queue_limit: int = 64,
        retry: RetryPolicy | None = None,
        breaker_threshold: int = 5,
        breaker_cooldown: float = 0.25,
        default_timeout: float | None = None,
        default_max_steps: int | None = None,
        default_max_nodes: int | None = None,
        optimize: bool = False,
        result_cache: bool = False,
        cache_entries: int = 512,
        cache_bytes: int = 8 << 20,
        shutdown_timeout: float = 10.0,
        max_restarts: int | None = None,
        restart_window: float = 30.0,
        restart_backoff: float = 0.05,
        heartbeat_interval: float = 0.5,
        heartbeat_timeout: float | None = None,
        clock=time.monotonic,
    ):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards!r}")
        if workers_per_shard < 1:
            raise ValueError(
                f"workers_per_shard must be >= 1, got {workers_per_shard!r}"
            )
        if max_restarts is not None and max_restarts < 0:
            raise ValueError(f"max_restarts must be >= 0, got {max_restarts!r}")
        self.registry = registry if registry is not None else TreeRegistry()
        self.shards = shards
        self.start_method = start_method
        self.stats = ServiceStats()
        self._clock = clock
        self._defaults = (default_timeout, default_max_steps, default_max_nodes)
        self._shutdown_timeout = shutdown_timeout
        self._inflight_cap = queue_limit + workers_per_shard
        # Mutations run on the parent (it owns the registry and segments):
        # one writer thread, serialized with late register() on this lock.
        self._retry = retry if retry is not None else RetryPolicy()
        self._mutation_lock = threading.Lock()
        self._mutator_rng = random.Random(4040)
        self._max_reshare_retries = 3

        ctx = get_context(start_method)
        self._ctx = ctx
        self._segments: dict[str, tuple[shared_memory.SharedMemory, int]] = {}
        self._processes: list = []
        self._request_qs: list = []
        #: Per-shard result-pipe read ends; ``None`` marks a slot retired by
        #: the collector (EOF seen) until a respawn installs a fresh pipe.
        self._result_readers: list = []
        self._reader_lock = threading.Lock()
        self._queues: list[BoundedRequestQueue] = []
        self._feeders: list[threading.Thread] = []
        self._inflight: list[threading.Semaphore] = []
        self._pending: dict[int, _ShardJob] = {}
        self._pending_lock = threading.Lock()
        self._seq = itertools.count()
        self._rr = itertools.count()
        self._closed = False
        self._lifecycle = threading.Lock()
        self._dead = [False] * shards
        self._dead_lock = threading.Lock()
        self._done = [False] * shards
        self._failed = [False] * shards
        self._supervised = max_restarts is not None
        self._supervisor = None
        self._heartbeats: dict[int, float] = {}
        self._fault_arms: dict[str, int | None] = {}
        self._fault_lock = threading.Lock()
        self._collector_stop = False
        self._stats_cond = threading.Condition()
        self._shard_stats: dict[int, tuple[dict, dict]] = {}
        self._stats_tokens: dict[int, object] = {}
        self._stats_token = itertools.count(1)
        self._config_kwargs = dict(
            workers=workers_per_shard,
            queue_limit=queue_limit,
            retry=retry,
            breaker_threshold=breaker_threshold,
            breaker_cooldown=breaker_cooldown,
            default_max_steps=default_max_steps,
            default_max_nodes=default_max_nodes,
            optimize=optimize,
            result_cache=result_cache,
            cache_entries=cache_entries,
            cache_bytes=cache_bytes,
            heartbeat_interval=heartbeat_interval,
        )

        try:
            segment_specs = []
            store = self.registry.store
            for name in self.registry.resident_names():
                if store is not None and store.epoch(name) == self.registry.epoch(name):
                    # The store holds this tree at its current epoch, so
                    # shards mmap the file directly — no segment, and cold
                    # (never-resident) trees cost the parent nothing at all.
                    continue
                spec = self._create_segment(name, self.registry.get(name))
                segment_specs.append(spec + (self.registry.epoch(name),))

            # One private result pipe per shard (not a shared queue): a
            # queue shared by every shard keeps its writer lock in shared
            # memory, and a shard SIGKILLed between ``send_bytes`` and the
            # release would wedge that lock for every surviving sibling and
            # every respawned replacement.  With a single-writer pipe the
            # worst a kill can do is tear the dying shard's own last frame,
            # which the collector reads as EOF — a death signal, not a hang.
            result_writers = []
            for shard_id in range(shards):
                request_q = ctx.SimpleQueue()
                result_reader, result_writer = ctx.Pipe(duplex=False)
                process = ctx.Process(
                    target=_shard_main,
                    args=(
                        shard_id,
                        request_q,
                        result_writer,
                        segment_specs,
                        self._make_config(shard_id),
                    ),
                    name=f"repro-shard-{shard_id}",
                    daemon=True,
                )
                self._request_qs.append(request_q)
                self._result_readers.append(result_reader)
                result_writers.append(result_writer)
                self._processes.append(process)
            # Start children before any parent-side thread exists: forking
            # a multi-threaded parent can clone held locks into the child.
            for shard_id, process in enumerate(self._processes):
                process.start()
                # Drop the parent's copy of the write end: the child holds
                # the only writer, so its death — even mid-frame — surfaces
                # as EOF on the reader instead of a silent pipe.
                result_writers[shard_id].close()
                # Seed the heartbeat clock at spawn so a hung-from-birth
                # shard still trips the staleness check.
                self._heartbeats[shard_id] = time.monotonic()
        except BaseException:
            self._cleanup_segments()
            for process in self._processes:
                if process.is_alive():  # pragma: no cover - defensive
                    process.terminate()
            raise

        for shard_id in range(shards):
            self._queues.append(
                BoundedRequestQueue(
                    queue_limit,
                    clock=clock,
                    depth_gauge=obs.gauge(
                        "service_queue_depth",
                        service=self.stats.service,
                        shard=str(shard_id),
                    ),
                )
            )
            self._inflight.append(threading.Semaphore(self._inflight_cap))
            feeder = threading.Thread(
                target=self._feeder_loop,
                args=(shard_id,),
                name=f"repro-shard-feeder-{shard_id}",
                daemon=True,
            )
            self._feeders.append(feeder)
        self._mutation_q = BoundedRequestQueue(
            queue_limit,
            clock=clock,
            depth_gauge=obs.gauge(
                "service_queue_depth", service=self.stats.service, shard="mutator"
            ),
        )
        self._mutator = threading.Thread(
            target=self._mutator_loop, name="repro-shard-mutator", daemon=True
        )
        self._collector = threading.Thread(
            target=self._collector_loop, name="repro-shard-collector", daemon=True
        )
        for feeder in self._feeders:
            feeder.start()
        self._mutator.start()
        self._collector.start()
        if self._supervised:
            from .supervisor import ShardSupervisor

            self._supervisor = ShardSupervisor(
                self,
                max_restarts=max_restarts,
                window=restart_window,
                backoff_base=restart_backoff,
                heartbeat_timeout=heartbeat_timeout,
                clock=clock,
            )
            self._supervisor.start()
        atexit.register(self._atexit_close)

    def _make_config(self, shard_id: int) -> ShardConfig:
        # Store fields are read at (re)spawn time, not construction time,
        # so a registry whose store was attached before the service was
        # built — the supported order — also covers respawned shards.
        store = self.registry.store
        return ShardConfig(
            shard_id=shard_id,
            service_name=f"{self.stats.service}.shard{shard_id}",
            store_dir=None if store is None else str(store.directory),
            resident_budget=self.registry.resident_budget,
            **self._config_kwargs,
        )

    # -- segments ----------------------------------------------------------

    def _create_segment(self, name: str, tree) -> tuple[str, str, int]:
        payload = dump_index(tree_index(tree))
        shm = shared_memory.SharedMemory(create=True, size=len(payload))
        shm.buf[: len(payload)] = payload
        self._segments[name] = (shm, len(payload))
        return (name, shm.name, len(payload))

    def _replace_segment(self, name: str, tree):
        """Swap in a fresh segment for ``name``; ``(spec, old_shm_or_None)``.

        The old segment is returned instead of unlinked here: shards that
        attached it keep their mapping regardless, but the *name* must stay
        resolvable until the replacement has been broadcast (a lagging
        shard heals by re-attaching the current name).
        """
        old = self._segments.get(name)
        spec = self._create_segment(name, tree)
        return spec, (old[0] if old is not None else None)

    def _cleanup_segments(self) -> None:
        for shm, _ in self._segments.values():
            try:
                shm.close()
                shm.unlink()
            except Exception:  # pragma: no cover - already gone
                pass
        self._segments.clear()

    def _broadcast_tree(self, spec, epoch: int, only_shard: int | None = None) -> None:
        """Ship ``(spec, epoch)`` to shards, one ``service.reshare`` fault
        check per shard — an injected fault skips that shard (it serves
        stale reads until healed) without failing the mutation itself."""
        name, shm_name, nbytes = spec
        targets = [only_shard] if only_shard is not None else list(range(self.shards))
        for shard in targets:
            if self._dead[shard] or self._done[shard]:
                continue
            try:
                faults.check("service.reshare")
                self._request_qs[shard].put(("tree", name, shm_name, nbytes, epoch))
            except InjectedFaultError:
                obs.counter("tree_reshare_total", event="fault").inc()
            except Exception:  # pragma: no cover - racing a crash
                self._mark_dead(shard)
            else:
                obs.counter("tree_reshare_total", event="ok").inc()

    def _broadcast_drop(self, name: str, epoch: int, only_shard: int | None = None) -> None:
        """Store-mode invalidation: tell shards ``name`` has a new stored
        generation.  Pack-before-broadcast makes the reload safe; one
        ``service.reshare`` fault check per shard, exactly like a segment
        broadcast — a dropped drop leaves that shard stale until the
        stamped-read heal path re-sends it."""
        targets = [only_shard] if only_shard is not None else list(range(self.shards))
        for shard in targets:
            if self._dead[shard] or self._done[shard]:
                continue
            try:
                faults.check("service.reshare")
                self._request_qs[shard].put(("drop", name, epoch))
            except InjectedFaultError:
                obs.counter("tree_reshare_total", event="fault").inc()
            except Exception:  # pragma: no cover - racing a crash
                self._mark_dead(shard)
            else:
                obs.counter("tree_reshare_total", event="ok").inc()

    def register(self, name: str, tree) -> None:
        """Register a tree after startup: segment + broadcast to shards.

        Broadcast-before-publish: shards see the new epoch's segment no
        later than the parent registry reports the new epoch, so a read
        stamped with the published epoch can only find a stale shard if a
        ``service.reshare`` fault dropped that shard's broadcast.

        With a (writable) store attached, the tree is packed to disk at
        the new epoch instead of re-segmented, and shards receive a
        ``drop`` invalidation — they mmap the store file on next touch.
        """
        if self._closed:
            raise ServiceClosedError("service is shutting down")
        store = self.registry.store
        store_mode = store is not None and not self.registry.store_readonly
        with self._mutation_lock:
            epoch = (
                self.registry._next_epoch(name)
                if store_mode
                else self.registry.epoch(name) + 1
            )
            wal = self.registry.wal
            if wal is not None:
                wal.append_register(name, epoch, tree)
            if store_mode:
                store.pack(name, tree, epoch=epoch)
                self._broadcast_drop(name, epoch)
                # Any segment a pre-store generation left behind is now
                # superseded by the store file; keeping it would let a
                # respawn re-spec stale bytes at a current epoch.
                old_entry = self._segments.pop(name, None)
                old_shm = old_entry[0] if old_entry is not None else None
            else:
                spec, old_shm = self._replace_segment(name, tree)
                self._broadcast_tree(spec, epoch)
            self.registry.register(name, tree, epoch=epoch, _wal_logged=True)
        self._unlink_old(old_shm)

    @staticmethod
    def _unlink_old(old_shm) -> None:
        if old_shm is not None:
            try:
                old_shm.close()
                old_shm.unlink()
            except Exception:  # pragma: no cover - already gone
                pass

    # -- admission ---------------------------------------------------------

    def _route(self, request: QueryRequest) -> int:
        if request.op != "equivalent" and request.tree is not None:
            return zlib.crc32(request.tree.encode("utf-8")) % self.shards
        return next(self._rr) % self.shards

    def submit(
        self,
        request: QueryRequest,
        *,
        block: bool = True,
        timeout: float | None = None,
    ) -> PendingResult:
        """Admit one request (same contract as ``QueryService.submit``)."""
        if self._closed:
            raise ServiceClosedError("service is shutting down")
        now = self._clock()
        default_timeout = self._defaults[0]
        per_request = (
            request.timeout if request.timeout is not None else default_timeout
        )
        shard = self._route(request)
        job = _ShardJob(
            request,
            None if per_request is None else now + per_request,
            now,
            shard,
        )
        self.stats.record_submitted()
        try:
            request.validate()
        except ValueError as exc:
            self._finish_local(job, self._error_result(job, exc, "admission"))
            return job.pending
        if request.op == "mutate":
            # Mutations never cross the pipe: the parent owns the registry
            # and the shared-memory segments, so the writer runs here and
            # re-shares the result to every shard.
            for expired in self._mutation_q.put(job, block=block, timeout=timeout):
                self._finish_local(
                    job=expired,
                    result=self._shed_result(expired, "deadline passed while queued"),
                )
            return job.pending
        if self._failed[shard]:
            self._finish_local(job, self._unavailable_result(job))
            return job.pending
        if self._dead[shard] and not self._supervised:
            self._finish_local(job, self._crashed_result(job))
            return job.pending
        # Supervised + dead: admit normally — the feeder waits (bounded by
        # the job's own deadline) for the supervisor to respawn the shard.
        for expired in self._queues[shard].put(job, block=block, timeout=timeout):
            self._finish_local(
                job=expired,
                result=self._shed_result(expired, "deadline passed while queued"),
            )
        return job.pending

    def run_batch(self, requests) -> list[QueryResult]:
        """Submit every request (blocking) and wait; results in input order."""
        handles = [self.submit(request) for request in requests]
        return [handle.result() for handle in handles]

    def map_stream(self, requests):
        """Lazily submit a request stream, yielding results in input order."""
        pending: deque[PendingResult] = deque()
        for request in requests:
            pending.append(self.submit(request))
            while pending and pending[0].done():
                yield pending.popleft().result()
        while pending:
            yield pending.popleft().result()

    # -- feeder / collector threads ----------------------------------------

    def _feeder_loop(self, shard: int) -> None:
        bounded = self._queues[shard]
        while True:
            job = bounded.get()
            if job is None:
                return  # queue closed and drained
            self._feed_one(shard, job)

    def _feed_one(self, shard: int, job: _ShardJob) -> None:
        """Dispatch one job to its shard, surviving a death-and-respawn.

        The loop re-evaluates shard state on every pass: a supervised dead
        shard means *wait* (the supervisor is respawning it; bounded by the
        job's deadline and service shutdown), an unsupervised one means the
        classic fail-fast crashed result, and a failed shard resolves with
        the terminal unavailable error.  The request queue handle is
        re-read after the aliveness check because respawn swaps it.
        """
        semaphore = self._inflight[shard]
        while True:
            if job.deadline is not None and self._clock() >= job.deadline:
                self._finish_local(
                    job, self._shed_result(job, "deadline passed while queued")
                )
                return
            if self._failed[shard]:
                self._finish_local(job, self._unavailable_result(job))
                return
            if self._dead[shard]:
                if not self._supervised:
                    self._finish_local(job, self._crashed_result(job))
                    return
                if self._closed:
                    self._finish_local(
                        job, self._shed_result(job, "service shut down before execution")
                    )
                    return
                time.sleep(0.01)  # the supervisor is (re)spawning it
                continue
            if not semaphore.acquire(timeout=0.05):
                continue
            if self._dead[shard]:  # died while we waited for a slot
                semaphore.release()
                continue
            payload = self._wire_payload(job)
            seq = next(self._seq)
            with self._pending_lock:
                self._pending[seq] = job
            request_q = self._request_qs[shard]
            try:
                request_q.put(("req", seq, payload))
            except Exception:
                with self._pending_lock:
                    self._pending.pop(seq, None)
                semaphore.release()
                self._mark_dead(shard)
                continue  # supervised: retry after respawn; else resolve above
            return

    def _wire_payload(self, job: _ShardJob) -> dict:
        """The request dict shipped to a shard, re-stamped at dispatch time.

        The remaining timeout is refreshed (queue wait already spent), and
        named-tree reads are stamped with the registry's *current* epoch as
        ``min_epoch`` — the freshness floor the shard must meet, and the
        signal that turns a dropped re-share into a structured, healable
        :class:`~repro.runtime.errors.StaleEpochError` instead of a
        silently stale answer.
        """
        request = job.request
        payload = {field: getattr(request, field) for field in _REQUEST_FIELDS}
        if job.deadline is not None:
            payload["timeout"] = max(0.0, job.deadline - self._clock())
        if request.op != "equivalent" and request.tree is not None and request.xml is None:
            payload["min_epoch"] = max(
                request.min_epoch or 0, self.registry.epoch(request.tree)
            )
        return payload

    # -- the mutator thread --------------------------------------------------

    def _mutator_loop(self) -> None:
        while True:
            job = self._mutation_q.get()
            if job is None:
                return  # queue closed and drained
            now = self._clock()
            if job.deadline is not None and now >= job.deadline:
                self._finish_local(
                    job, self._shed_result(job, "deadline passed while queued")
                )
                continue
            try:
                result = self._apply_mutation(job)
            except BaseException as exc:  # the no-lost-requests backstop
                result = self._error_result(job, exc, "mutator")
            try:
                self._finish_local(job, result)
            except Exception:  # pragma: no cover - a dead mutator would
                # block every later submit; survive a resolve surprise.
                obs.counter("service_loop_errors_total", loop="mutator").inc()

    def _apply_mutation(self, job: _ShardJob) -> QueryResult:
        """One edit: apply, re-segment, broadcast, publish — atomically.

        Everything up to (and including) the registry publish happens under
        the mutation lock, so readers observe epochs in mutation order and
        a failed attempt publishes nothing.  Transient faults at the
        ``trees.mutate`` site retry under the service's retry policy;
        per-shard ``service.reshare`` faults do *not* fail the mutation —
        they leave that shard stale, to be healed on its next stamped read.
        """
        from ..trees.mutate import apply_edit_indexed, edit_from_json, edit_to_json

        request = job.request
        try:
            edit = edit_from_json(request.edit)
        except (ValueError, TypeError) as exc:
            return self._error_result(job, exc, "mutator")
        attempts = 0
        retries = 0
        while True:
            attempts += 1
            if job.deadline is not None and self._clock() >= job.deadline:
                exc: BaseException = DeadlineExceededError(
                    f"deadline passed before mutation of {request.tree!r} applied"
                )
                return self._error_result(job, exc, "mutator", retries=retries)
            old_shm = None
            try:
                with obs.span(
                    "service.mutate", tree=request.tree, attempt=attempts
                ):
                    with self._mutation_lock:
                        old = self.registry.get(request.tree)
                        faults.check("trees.mutate")
                        new_tree = apply_edit_indexed(old, edit)
                        epoch = self.registry.epoch(request.tree) + 1
                        wal = self.registry.wal
                        if wal is not None:
                            # Log-ahead: the edit record is durable before
                            # the broadcast and the epoch publish.  A failed
                            # append (wal.append fault site, disk error)
                            # aborts here — retryable, registry untouched.
                            wal.append_mutate(
                                request.tree, epoch, edit_to_json(edit), new_tree
                            )
                        store = self.registry.store
                        if store is not None and not self.registry.store_readonly:
                            # Store mode: pack the new generation, then
                            # invalidate — same pack-before-broadcast-
                            # before-publish ordering as the segment path.
                            store.pack(request.tree, new_tree, epoch=epoch)
                            self._broadcast_drop(request.tree, epoch)
                            old_entry = self._segments.pop(request.tree, None)
                            old_shm = (
                                old_entry[0] if old_entry is not None else None
                            )
                        else:
                            spec, old_shm = self._replace_segment(
                                request.tree, new_tree
                            )
                            self._broadcast_tree(spec, epoch)
                        self.registry.register(
                            request.tree, new_tree, epoch=epoch, _wal_logged=True
                        )
            except (ValueError, TypeError) as exc:
                return self._error_result(job, exc, "mutator", retries=retries)
            except EngineFaultError as exc:
                if attempts < self._retry.max_attempts:
                    delay = self._retry.delay(attempts, self._mutator_rng)
                    if job.deadline is not None:
                        delay = min(delay, max(0.0, job.deadline - self._clock()))
                    if delay > 0:
                        time.sleep(delay)
                    retries += 1
                    continue
                return self._error_result(job, exc, "mutator", retries=retries)
            self._unlink_old(old_shm)
            obs.counter("tree_mutations_total", kind=edit.kind).inc()
            return QueryResult(
                id=request.id,
                op=request.op,
                status="ok",
                value={
                    "tree": request.tree,
                    "epoch": epoch,
                    "kind": edit.kind,
                    "size": new_tree.size,
                },
                retries=retries,
                routed="mutate",
                latency=self._clock() - job.submitted_at,
                worker="mutator",
            )

    def _collector_loop(self) -> None:
        """Multiplex every shard's private result pipe onto one thread.

        The wait set is rebuilt each pass from ``_result_readers`` so a
        respawn's fresh pipe joins (and a retired one leaves) within one
        iteration.  EOF on a pipe — including the torn last frame of a
        shard SIGKILLed mid-send — is the fastest death signal we have:
        the slot is retired (compare-and-swap against a racing respawn)
        and the crash path runs immediately instead of waiting for the
        next liveness poll.
        """
        while True:
            with self._reader_lock:
                readers = {
                    conn: shard
                    for shard, conn in enumerate(self._result_readers)
                    if conn is not None
                }
            try:
                ready = _mp_connection.wait(list(readers), timeout=0.1)
            except OSError:  # pragma: no cover - reader closed mid-wait
                continue
            if not ready:
                if self._collector_stop:
                    return
                self._check_shards()
                continue
            for conn in ready:
                shard = readers[conn]
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    with self._reader_lock:
                        stale = self._result_readers[shard] is not conn
                        if not stale:
                            self._result_readers[shard] = None
                    # A swapped slot means a respawn already handled this
                    # death; a done shard simply closed its end cleanly.
                    if not stale and not self._done[shard]:
                        self._mark_dead(shard)
                    continue
                kind = message[0]
                try:
                    if kind == "res":
                        self._on_result(message[1], message[2], message[3])
                    elif kind == "stats":
                        with self._stats_cond:
                            self._shard_stats[message[1]] = (message[3], message[4])
                            self._stats_tokens[message[1]] = message[2]
                            self._stats_cond.notify_all()
                    elif kind == "hb":
                        self._heartbeats[message[1]] = time.monotonic()
                    elif kind == "bye":
                        self._done[message[1]] = True
                except Exception:  # pragma: no cover - backstop; a dead
                    # collector would strand every in-flight request, so the
                    # loop survives anything one message's handling throws.
                    obs.counter("service_loop_errors_total", loop="collector").inc()

    def _on_result(self, shard: int, seq: int, payload: dict) -> None:
        with self._pending_lock:
            job = self._pending.pop(seq, None)
        if job is None:
            # Already resolved elsewhere (stranded at a crash, re-dispatched
            # under a new seq): its in-flight slot was released then — a
            # second release here would quietly inflate the cap.
            return
        self._inflight[shard].release()
        try:
            if (
                payload.get("status") == "error"
                and (payload.get("error") or {}).get("type") == "StaleEpochError"
                and job.reshare_retries < self._max_reshare_retries
                and not self._closed
                and not self._dead[shard]
                and (job.deadline is None or self._clock() < job.deadline)
            ):
                if self._heal_and_redispatch(job, shard):
                    return
        except Exception:  # pragma: no cover - heal is best-effort; the
            # popped job must still resolve below, never be lost.
            obs.counter("service_loop_errors_total", loop="collector").inc()
        result = QueryResult(
            id=payload.get("id", job.request.id),
            op=payload.get("op", job.request.op),
            status=payload.get("status", "error"),
            value=payload.get("value"),
            error=payload.get("error"),
            retries=payload.get("retries", 0),
            fallback=payload.get("fallback", False),
            routed=payload.get("routed", "none"),
            # Caller-visible latency is end-to-end (queue + pipe + shard);
            # the shard's own histogram records its local execution view.
            latency=self._clock() - job.submitted_at,
            worker=payload.get("worker", f"shard-{shard}"),
        )
        job.pending.resolve(result)

    def _heal_and_redispatch(self, job: _ShardJob, shard: int) -> bool:
        """A shard answered stale: re-share the current segment, retry there.

        Runs on the collector thread, so everything is non-blocking: if the
        segment is gone, the in-flight slot cannot be re-acquired instantly,
        or the pipe fails, we return False and the stale error resolves to
        the caller (it is still structured and retryable client-side).
        """
        job.reshare_retries += 1
        name = job.request.tree
        with self._mutation_lock:
            entry = self._segments.get(name)
            epoch = self.registry.epoch(name)
            spec = None if entry is None else (name, entry[0].name, entry[1])
            store = self.registry.store
            store_heal = (
                spec is None and store is not None and store.contains(name)
            )
        if spec is None and not store_heal:  # pragma: no cover - racing shutdown
            return False
        if not self._inflight[shard].acquire(blocking=False):
            return False  # pragma: no cover - shard saturated; resolve stale
        seq = next(self._seq)
        with self._pending_lock:
            self._pending[seq] = job
        try:
            if store_heal:
                # Store mode: no segment to re-share — the shard heals by
                # dropping its stale resident copy and re-loading the
                # current generation from the store file.
                self._broadcast_drop(name, epoch, only_shard=shard)
            else:
                self._broadcast_tree(spec, epoch, only_shard=shard)
            self._request_qs[shard].put(("req", seq, self._wire_payload(job)))
        except Exception:  # pragma: no cover - racing a crash
            with self._pending_lock:
                self._pending.pop(seq, None)
            self._inflight[shard].release()
            return False
        obs.counter("tree_reshare_total", event="heal").inc()
        return True

    def _check_shards(self) -> None:
        for shard, process in enumerate(self._processes):
            if not self._dead[shard] and not self._done[shard]:
                try:
                    alive = process.is_alive()
                except ValueError:  # closed handle racing a respawn swap
                    continue
                if not alive:
                    self._mark_dead(shard)

    def _mark_dead(self, shard: int) -> None:
        """Contain a crashed shard: strand-collect its in-flight requests.

        Unsupervised (or failed/shutting-down), the stranded requests
        resolve immediately with crashed results — the PR 6 behaviour.
        Supervised, they are handed to the supervisor intact and re-dispatch
        once the replacement process is live.
        """
        with self._dead_lock:
            if self._dead[shard]:
                return
            self._dead[shard] = True
        with self._pending_lock:
            stranded = [
                (seq, job)
                for seq, job in self._pending.items()
                if job.shard == shard
            ]
            for seq, _ in stranded:
                del self._pending[seq]
        jobs = [job for _, job in stranded]
        for _ in jobs:
            self._inflight[shard].release()
        if (
            self._supervised
            and not self._failed[shard]
            and not self._closed
            and self._supervisor is not None
            and self._supervisor.notify_death(shard, jobs)
        ):
            return
        for job in jobs:
            self._finish_local(job, self._crashed_result(job))

    # -- result shaping ----------------------------------------------------

    def _finish_local(self, job: _ShardJob, result: QueryResult) -> None:
        """Resolve a request the parent itself decided (never ran remotely)."""
        # Same order as the worker tier: count before resolve, so a caller
        # that has the result never reads a snapshot missing it.
        self.stats.record_result(result)
        job.pending.resolve(result)

    def _shed_result(self, job: _ShardJob, reason: str) -> QueryResult:
        waited = self._clock() - job.submitted_at
        exc = RequestShedError(f"{reason} (waited {waited:.3f}s)")
        return QueryResult(
            id=job.request.id,
            op=job.request.op,
            status="shed",
            error=error_payload(exc),
            routed="none",
            latency=waited,
            worker="parent",
        )

    def _crashed_result(self, job: _ShardJob) -> QueryResult:
        # The handle may be closed (already reaped), swapped by a respawn,
        # or never started — ``.exitcode`` raises ValueError on a closed
        # handle; report None rather than crash the resolving thread.
        try:
            exitcode = self._processes[job.shard].exitcode
        except (ValueError, IndexError, AttributeError):
            exitcode = None
        exc = ShardCrashedError(
            f"shard {job.shard} died (exitcode {exitcode}) with the request "
            "outstanding"
        )
        return QueryResult(
            id=job.request.id,
            op=job.request.op,
            status="error",
            error=error_payload(exc),
            routed="none",
            latency=self._clock() - job.submitted_at,
            worker="parent",
        )

    def _unavailable_result(self, job: _ShardJob) -> QueryResult:
        exc = ShardUnavailableError(
            f"shard {job.shard} exhausted its restart budget; trees routed "
            "to it are unavailable until the service restarts"
        )
        return QueryResult(
            id=job.request.id,
            op=job.request.op,
            status="error",
            error=error_payload(exc),
            routed="none",
            latency=self._clock() - job.submitted_at,
            worker="parent",
        )

    def _error_result(
        self, job: _ShardJob, exc, worker: str, retries: int = 0
    ) -> QueryResult:
        return QueryResult(
            id=job.request.id,
            op=job.request.op,
            status="error",
            error=error_payload(exc),
            retries=retries,
            routed="none",
            latency=self._clock() - job.submitted_at,
            worker=worker,
        )

    # -- supervision hooks (called by ShardSupervisor) -----------------------

    def _respawn_shard(self, shard: int) -> float:
        """Replace a dead shard with a fully resynced process; resync seconds.

        The segment-spec snapshot and the request-queue swap happen under
        the mutation lock, so no mutation's broadcast can fall between the
        snapshot and the new queue: a broadcast either lands in the new
        queue (attached after the startup specs — re-registering the same
        epoch is idempotent) or is covered by the snapshot.  Mutations
        published while the shard was down are part of the snapshot's
        per-tree epochs; anything that still slips through (a broadcast
        skipped because ``_dead`` was set) heals through the stamped-read
        ``StaleEpochError`` path.
        """
        start = time.perf_counter()
        old = self._processes[shard]
        try:
            old.join(timeout=1.0)  # reap the zombie
        except Exception:  # pragma: no cover - closed handle
            pass
        with self._mutation_lock:
            specs = [
                (name, shm.name, nbytes, self.registry.epoch(name))
                for name, (shm, nbytes) in self._segments.items()
            ]
            request_q = self._ctx.SimpleQueue()
            self._request_qs[shard] = request_q
        # A fresh result pipe too: the dead shard's pipe may hold a torn
        # frame, and single-writer isolation is the whole point — the
        # replacement never shares an IPC lock with the corpse.
        result_reader, result_writer = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_shard_main,
            args=(shard, request_q, result_writer, specs, self._make_config(shard)),
            name=f"repro-shard-{shard}",
            daemon=True,
        )
        process.start()
        result_writer.close()
        self._processes[shard] = process
        with self._reader_lock:
            self._result_readers[shard] = result_reader
        # Re-arm tracked fault state at the originally requested counts
        # (fires already consumed by the dead shard are not subtracted).
        with self._fault_lock:
            arms = dict(self._fault_arms)
        for site, times in arms.items():
            request_q.put(("faults", site, times))
        self._heartbeats[shard] = time.monotonic()
        with self._dead_lock:
            self._dead[shard] = False
        return time.perf_counter() - start

    def _redispatch_job(self, shard: int, job: _ShardJob) -> None:
        """Re-submit one stranded casualty to the freshly respawned shard."""
        if job.deadline is not None and self._clock() >= job.deadline:
            self._finish_local(
                job, self._shed_result(job, "deadline passed during shard restart")
            )
            return
        if not self._inflight[shard].acquire(blocking=False):
            # Feeders raced every slot away already; requeue at the back
            # (waiting out a momentarily full queue — the shard is alive
            # again, so the backlog is draining).  Still saturated after
            # the grace period, or closing: overload semantics (shed),
            # never a phantom crash.
            try:
                expired = self._queues[shard].put(job, block=True, timeout=1.0)
            except Exception:
                self._finish_local(
                    job,
                    self._shed_result(
                        job, "request queue at capacity during shard restart"
                    ),
                )
                return
            for stale in expired:
                self._finish_local(
                    stale, self._shed_result(stale, "deadline passed while queued")
                )
            return
        seq = next(self._seq)
        with self._pending_lock:
            self._pending[seq] = job
        try:
            self._request_qs[shard].put(("req", seq, self._wire_payload(job)))
        except Exception:  # pragma: no cover - replacement died instantly
            with self._pending_lock:
                self._pending.pop(seq, None)
            self._inflight[shard].release()
            self._mark_dead(shard)
            # The job left _pending before _mark_dead could strand-collect
            # it: hand it back explicitly so it is never silently dropped.
            supervisor = self._supervisor
            if not (supervisor is not None and supervisor.notify_death(shard, [job])):
                self._finish_local(job, self._crashed_result(job))

    # -- chaos -------------------------------------------------------------

    def arm_faults(self, site: str, times: int | None = None) -> dict[int, bool]:
        """Broadcast a fault arm to every shard; per-shard delivery outcome.

        Returns ``{shard: delivered}`` — ``False`` for shards that are
        dead, finished, or failed (they never see the arm), so chaos soaks
        can assert fault state instead of guessing.  Delivered arms are
        also tracked for the supervisor's re-arm-on-respawn: a replacement
        shard receives every tracked ``(site, times)`` at spawn.
        """
        with self._fault_lock:
            self._fault_arms[site] = times
        outcome: dict[int, bool] = {}
        for shard, request_q in enumerate(self._request_qs):
            if self._dead[shard] or self._done[shard] or self._failed[shard]:
                outcome[shard] = False
                continue
            try:
                request_q.put(("faults", site, times))
            except Exception:  # pragma: no cover - racing a crash
                outcome[shard] = False
            else:
                outcome[shard] = True
        return outcome

    def disarm_faults(self, site: str | None = None) -> dict[int, bool]:
        """Broadcast a disarm (one site, or all); per-shard delivery outcome."""
        with self._fault_lock:
            if site is None:
                self._fault_arms.clear()
            else:
                self._fault_arms.pop(site, None)
        outcome: dict[int, bool] = {}
        for shard, request_q in enumerate(self._request_qs):
            if self._dead[shard] or self._done[shard] or self._failed[shard]:
                outcome[shard] = False
                continue
            try:
                request_q.put(("disarm", site))
            except Exception:  # pragma: no cover - racing a crash
                outcome[shard] = False
            else:
                outcome[shard] = True
        return outcome

    # -- stats -------------------------------------------------------------

    def _shard_snapshots(self, timeout: float = 5.0) -> dict[int, tuple[dict, dict]]:
        """Fresh per-shard (stats, registry-delta) pairs; cached if stopped."""
        live = [
            shard
            for shard in range(self.shards)
            if not self._dead[shard] and not self._done[shard] and not self._closed
        ]
        if live:
            token = next(self._stats_token)
            for shard in live:
                try:
                    self._request_qs[shard].put(("stats", token))
                except Exception:  # pragma: no cover - racing a crash
                    continue
            deadline = time.monotonic() + timeout
            with self._stats_cond:
                while any(
                    self._stats_tokens.get(shard) != token
                    for shard in live
                    if not self._dead[shard]
                ):
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._stats_cond.wait(remaining):
                        break
        with self._stats_cond:
            return dict(self._shard_stats)

    def merged_registry(
        self, snapshots: dict[int, tuple[dict, dict]] | None = None
    ) -> obs.MetricsRegistry:
        """Parent registry + every shard's delta, as one standalone registry."""
        if snapshots is None:
            snapshots = self._shard_snapshots()
        states = [obs.REGISTRY.snapshot()]
        states.extend(delta for _, delta in snapshots.values())
        return obs.registry_from_state(obs.merge_states(*states))

    def stats_snapshot(self) -> dict:
        """The cross-shard aggregate view (``repro batch --stats``)."""
        snapshots = self._shard_snapshots()
        registry = self.merged_registry(snapshots)
        parent = self.stats.snapshot()
        shard_stats = {
            f"shard-{shard}": snap for shard, (snap, _) in sorted(snapshots.items())
        }
        merged = ServiceStats.merge_snapshots(
            [parent, *(snap for snap, _ in snapshots.values())],
            submitted=parent["submitted"],
            latency=obs.merged_histogram(registry, "service_latency_seconds"),
        )
        merged["parent"] = parent
        merged["shards"] = shard_stats
        caches = [
            snap["result_cache"]
            for snap, _ in snapshots.values()
            if "result_cache" in snap
        ]
        if caches:
            events: dict[str, int] = {}
            for cache in caches:
                for event, count in cache["events"].items():
                    events[event] = events.get(event, 0) + int(count)
            lookups = events.get("hit", 0) + events.get("miss", 0)
            merged["result_cache"] = {
                "entries": sum(cache["entries"] for cache in caches),
                "bytes": sum(cache["bytes"] for cache in caches),
                "in_flight": sum(cache["in_flight"] for cache in caches),
                "events": events,
                "hit_rate": (events.get("hit", 0) / lookups) if lookups else 0.0,
            }
        optimizers = [
            snap["optimizer"] for snap, _ in snapshots.values() if "optimizer" in snap
        ]
        if optimizers:
            choices: dict[str, int] = {}
            for opt in optimizers:
                for backend, count in opt.get("choices", {}).items():
                    choices[backend] = choices.get(backend, 0) + int(count)
            merged["optimizer"] = {
                # Rates are per-shard EWMAs; report each shard's calibration
                # rather than a meaningless cross-process average.
                "rates": {
                    f"shard-{shard}": snap["optimizer"]["rates"]
                    for shard, (snap, _) in sorted(snapshots.items())
                    if "optimizer" in snap
                },
                "choices": choices,
            }
        return merged

    def metrics_snapshot(self) -> dict:
        """The merged metrics registry as ``repro-metrics/1`` JSON."""
        return self.merged_registry().to_json()

    # -- lifecycle ---------------------------------------------------------

    def shutdown(self, *, drain: bool = True, timeout: float | None = None) -> None:
        """Stop admissions, stop shards, reap processes.  Idempotent.

        ``drain=True`` lets every shard finish (or shed, per its own
        queue's deadline policy) everything already admitted; ``drain=False``
        sheds the parent-side remainder and tells shards to shed theirs.
        Processes that outlive ``timeout`` (default: the construction-time
        ``shutdown_timeout``) are terminated, then killed — a deadlocked
        shard cannot hang its parent.
        """
        self._shutdown(drain=drain, timeout=timeout, kill=False)

    def close(self) -> None:
        """Non-graceful shutdown: kill shard processes immediately.

        Queued and in-flight requests resolve with structured shed/crash
        results; no child process survives this call.
        """
        self._shutdown(drain=False, timeout=0.0, kill=True)

    def _shutdown(self, *, drain: bool, timeout: float | None, kill: bool) -> None:
        with self._lifecycle:
            if self._closed:
                return
            self._closed = True
        timeout = self._shutdown_timeout if timeout is None else timeout
        if self._supervisor is not None:
            # Stop self-healing first: a respawn racing the kill loop below
            # would resurrect a shard mid-shutdown.  Any still-stashed
            # casualties resolve as shed inside stop().
            self._supervisor.stop()
        for bounded in self._queues:
            bounded.close()
        self._mutation_q.close()
        if not drain:
            for bounded in (*self._queues, self._mutation_q):
                for job in bounded.drain():
                    self._finish_local(
                        job,
                        self._shed_result(job, "service shut down before execution"),
                    )
        if kill:
            for process in self._processes:
                if process.is_alive():
                    process.terminate()
        for feeder in self._feeders:
            feeder.join(timeout=max(timeout, 1.0))
        self._mutator.join(timeout=max(timeout, 1.0))
        if not kill:
            for shard, request_q in enumerate(self._request_qs):
                if not self._dead[shard]:
                    try:
                        request_q.put(("stop", drain))
                    except Exception:  # pragma: no cover - racing a crash
                        self._mark_dead(shard)
        deadline = time.monotonic() + timeout
        for process in self._processes:
            process.join(timeout=max(0.0, deadline - time.monotonic()))
        for process in self._processes:
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
            if process.is_alive():  # pragma: no cover - stuck in the kernel
                process.kill()
                process.join(timeout=1.0)
        self._check_shards()
        self._collector_stop = True
        self._collector.join(timeout=5.0)
        # Anything still unresolved (e.g. killed before its result was
        # read) gets the structured no-lost-requests treatment.
        with self._pending_lock:
            leftovers = list(self._pending.values())
            self._pending.clear()
        for job in leftovers:
            self._finish_local(
                job, self._shed_result(job, "service shut down before execution")
            )
        self._cleanup_segments()
        try:
            atexit.unregister(self._atexit_close)
        except Exception:  # pragma: no cover - interpreter teardown
            pass

    def _atexit_close(self) -> None:  # pragma: no cover - interpreter exit
        for process in self._processes:
            try:
                if process.is_alive():
                    process.terminate()
            except Exception:
                pass
        self._cleanup_segments()

    def __enter__(self) -> "ShardedQueryService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None and issubclass(exc_type, KeyboardInterrupt):
            self.close()
        else:
            self.shutdown(drain=True)

    @property
    def processes(self) -> list:
        """The shard process handles (read-only; for tests and operators)."""
        return list(self._processes)

    @property
    def restart_counts(self) -> list[int]:
        """Per-shard supervisor restarts so far (all zeros unsupervised)."""
        if self._supervisor is None:
            return [0] * self.shards
        return list(self._supervisor.restart_counts)
