"""Per-backend circuit breaker: closed → open → half-open → closed.

Retries handle *transient* fast-path failures; a breaker handles the
*persistent* ones.  If the bitset engine family serving a request class
fails ``failure_threshold`` times consecutively, the breaker **opens**:
requests stop touching the broken engine at all and route straight to the
row-wise oracle backend (correct, slower — the PR 3 degradation direction),
which both protects latency (no doomed attempt + retry storm per request)
and gives the fast path quiet time.  After ``cooldown`` seconds the breaker
goes **half-open** and admits exactly one *probe* request to the fast path:
success closes the breaker (normal routing resumes), failure re-opens it
and restarts the cooldown.

The state machine is driven entirely by its users' calls — there is no
timer thread.  :meth:`acquire` is the single routing decision point and
returns a route string rather than a bool so callers can distinguish the
probe (whose outcome *must* be reported back) from ordinary fast-path
traffic:

======================  ================================================
``"fast"``              closed; run the bitset engine, report the outcome
``"probe"``             half-open; as above, but this is the one probe
``"fallback"``          open (or a probe is already in flight); use the
                        oracle and do **not** report into the breaker
======================  ================================================

All methods are thread-safe; transition counts are exposed for the service
stats (``snapshot()``).
"""

from __future__ import annotations

import threading
import time

from .. import obs

__all__ = ["CircuitBreaker", "CLOSED", "OPEN", "HALF_OPEN"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """One engine family's health latch (see module docstring)."""

    def __init__(
        self,
        name: str = "",
        *,
        failure_threshold: int = 5,
        cooldown: float = 0.25,
        clock=time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold!r}"
            )
        if cooldown < 0:
            raise ValueError(f"cooldown must be >= 0, got {cooldown!r}")
        self.name = name
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_in_flight = False
        self.open_count = 0
        self.recovery_count = 0

    # -- routing -----------------------------------------------------------

    def acquire(self) -> str:
        """The routing decision for one request: fast, probe, or fallback."""
        with self._lock:
            if self._state == CLOSED:
                return "fast"
            if self._state == OPEN:
                if self._clock() - self._opened_at >= self.cooldown:
                    self._state = HALF_OPEN
                    self._probe_in_flight = True
                    return "probe"
                return "fallback"
            # HALF_OPEN: one probe at a time; everyone else stays safe.
            if not self._probe_in_flight:
                self._probe_in_flight = True
                return "probe"
            return "fallback"

    # -- outcome reports (fast/probe routes only) --------------------------

    def record_success(self) -> None:
        with self._lock:
            recovered = self._state == HALF_OPEN
            if recovered:
                self.recovery_count += 1
            self._state = CLOSED
            self._consecutive_failures = 0
            self._probe_in_flight = False
        if recovered:
            obs.counter(
                "breaker_transitions_total",
                breaker=self.name,
                transition="recovery",
            ).inc()

    def record_failure(self) -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                # The probe failed: back to open, restart the cooldown.
                self._trip_locked()
                return
            self._consecutive_failures += 1
            if self._state == CLOSED and (
                self._consecutive_failures >= self.failure_threshold
            ):
                self._trip_locked()

    def _trip_locked(self) -> None:
        self._state = OPEN
        self._opened_at = self._clock()
        self._probe_in_flight = False
        self._consecutive_failures = 0
        self.open_count += 1
        obs.counter(
            "breaker_transitions_total", breaker=self.name, transition="open"
        ).inc()

    # -- inspection --------------------------------------------------------

    @property
    def state(self) -> str:
        """The current state (open flips to half-open lazily on acquire)."""
        with self._lock:
            return self._state

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "open_count": self.open_count,
                "recovery_count": self.recovery_count,
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CircuitBreaker({self.name!r}, state={self.state!r})"
