"""A bounded FIFO request queue with backpressure and deadline shedding.

Why not :class:`queue.Queue`?  Three behaviours the service needs are not
expressible on top of it without races:

* **deadline sweeps** — :meth:`BoundedRequestQueue.shed_expired` atomically
  removes every queued item whose deadline has passed and *returns* them,
  so the caller can record a structured shed result for each (the
  no-silent-drops invariant: an item leaves the queue only by being handed
  to a worker, returned from a sweep, or drained at shutdown);
* **full-queue policy** — on an admission attempt against a full queue the
  service first sheds expired entries to make room, and only then blocks
  (or, non-blocking, raises
  :class:`~repro.runtime.errors.QueueFullError`), which needs the
  shed-and-retry to happen under one lock;
* **close semantics** — :meth:`close` wakes every blocked producer
  (:class:`~repro.runtime.errors.ServiceClosedError`) and turns
  :meth:`get` into "drain the remainder, then return None" so workers
  exit deterministically; :meth:`drain` hands the un-run remainder back
  for shedding when the shutdown is not graceful.

Items only need a ``deadline`` attribute (monotonic-clock absolute seconds
or None); the queue never inspects anything else.
"""

from __future__ import annotations

import threading
import time
from collections import deque

from ..runtime.errors import QueueFullError, ServiceClosedError

__all__ = ["BoundedRequestQueue"]


class BoundedRequestQueue:
    """FIFO of deadline-carrying items, bounded at ``maxsize`` (see above)."""

    def __init__(self, maxsize: int, *, clock=time.monotonic, depth_gauge=None):
        if maxsize <= 0:
            raise ValueError(f"maxsize must be positive, got {maxsize!r}")
        self.maxsize = maxsize
        self._clock = clock
        self._items: deque = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self._closed = False
        #: Optional :class:`repro.obs.Gauge` tracking the queue depth.
        self._depth_gauge = depth_gauge

    def _sync_depth_locked(self) -> None:
        if self._depth_gauge is not None:
            self._depth_gauge.set(len(self._items))

    # -- producer side -----------------------------------------------------

    def put(self, item, *, block: bool = True, timeout: float | None = None) -> list:
        """Enqueue ``item``; returns the expired items shed to make room.

        When full, expired entries are shed first; if the queue is still
        full, a blocking put waits for space (``timeout`` seconds at most)
        and a non-blocking one raises :class:`QueueFullError` immediately.
        Raises :class:`ServiceClosedError` once :meth:`close` has run.
        """
        deadline = None if timeout is None else self._clock() + timeout
        with self._lock:
            shed: list = []
            while True:
                if self._closed:
                    raise ServiceClosedError("queue is closed to new requests")
                if len(self._items) < self.maxsize:
                    self._items.append(item)
                    self._sync_depth_locked()
                    self._not_empty.notify()
                    return shed
                shed.extend(self._shed_expired_locked())
                if len(self._items) < self.maxsize:
                    continue
                if not block:
                    raise QueueFullError(
                        f"request queue at capacity ({self.maxsize})"
                    )
                if deadline is not None:
                    remaining = deadline - self._clock()
                    if remaining <= 0 or not self._not_full.wait(remaining):
                        raise QueueFullError(
                            f"request queue still at capacity ({self.maxsize}) "
                            f"after {timeout}s"
                        )
                else:
                    self._not_full.wait()

    # -- consumer side -----------------------------------------------------

    def get(self, *, timeout: float | None = None):
        """Dequeue the oldest item; None once closed *and* drained.

        A ``timeout`` also returns None on expiry (callers distinguish the
        two by checking :attr:`closed`).
        """
        deadline = None if timeout is None else self._clock() + timeout
        with self._lock:
            while not self._items:
                if self._closed:
                    return None
                if deadline is not None:
                    remaining = deadline - self._clock()
                    if remaining <= 0 or not self._not_empty.wait(remaining):
                        if self._items:
                            break
                        return None
                else:
                    self._not_empty.wait()
            item = self._items.popleft()
            self._sync_depth_locked()
            self._not_full.notify()
            return item

    def shed_expired(self, now: float | None = None) -> list:
        """Atomically remove and return every item whose deadline has passed."""
        with self._lock:
            return self._shed_expired_locked(now)

    def _shed_expired_locked(self, now: float | None = None) -> list:
        now = self._clock() if now is None else now
        kept: deque = deque()
        shed: list = []
        for item in self._items:
            deadline = getattr(item, "deadline", None)
            if deadline is not None and now >= deadline:
                shed.append(item)
            else:
                kept.append(item)
        if shed:
            self._items = kept
            self._sync_depth_locked()
            self._not_full.notify(len(shed))
        return shed

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Refuse new puts; pending gets drain the remainder, then None."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()

    def drain(self) -> list:
        """Remove and return everything still queued (for shutdown shedding)."""
        with self._lock:
            items = list(self._items)
            self._items.clear()
            self._sync_depth_locked()
            self._not_full.notify_all()
            return items

    @property
    def closed(self) -> bool:
        return self._closed

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)
