"""Setup shim: enables legacy editable installs on environments without
the `wheel` package (metadata lives in pyproject.toml)."""

from setuptools import setup

setup()
