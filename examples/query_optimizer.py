"""A miniature XPath query optimizer — the motivation scenario.

Equivalent queries can differ by orders of magnitude in evaluation cost, so
optimizers rewrite queries using valid equivalences.  The two classic
worries (straight from the literature this paper belongs to):

* **soundness** — are all of your rewrite rules valid?  We machine-check the
  catalog of axiom schemes by random instantiation over tree corpora.
* **profit** — does the rewrite actually help?  We time original vs
  simplified queries on a realistic document.

Run with::

    python examples/query_optimizer.py
"""

import random
import time

from repro import Query
from repro.decision import AXIOM_SCHEMES, standard_corpus, verify_scheme
from repro.trees import random_tree
from repro.xpath import Evaluator

#: Queries as a user (or a naive query generator) might write them, paired
#: with nothing — the optimizer must find the better form itself.
NAIVE_QUERIES = [
    "self/child[true]/self/descendant_or_self",
    "child/child* | 0",
    "child[a][true][b]",
    "(child*)*[<?a>]",
    "child[a and not a] | descendant",
    "self/(child | child)/parent/child",
]


def time_query(query: Query, trees, repeats: int = 3) -> float:
    best = float("inf")
    for __ in range(repeats):
        start = time.perf_counter()
        for tree in trees:
            Evaluator(tree).pairs(query.expr)
        best = min(best, time.perf_counter() - start)
    return best


def main() -> None:
    corpus = standard_corpus()
    rng = random.Random(0)
    workload = [random_tree(rng.randint(40, 90), rng=rng) for __ in range(12)]

    print("=== Phase 1: soundness — machine-checking the rule catalog ===")
    print(f"{len(AXIOM_SCHEMES)} axiom schemes (semiring, predicate, node,")
    print("star, Löb/transitivity, relation-algebra, and W laws); each verified")
    print("under random instantiation:\n")
    light = standard_corpus(exhaustive_size=3, random_count=6, max_random_size=12)
    failures = 0
    for scheme in AXIOM_SCHEMES:
        report = verify_scheme(scheme, light, trials=2, rng=random.Random(1))
        status = "ok" if report.equivalent_on_corpus else "FAILED"
        if not report.equivalent_on_corpus:
            failures += 1
        print(f"  {scheme.name:24s} {status}")
    print(f"\n  => {len(AXIOM_SCHEMES) - failures}/{len(AXIOM_SCHEMES)} sound\n")

    print("=== Phase 2: rewriting naive queries ===\n")
    for text in NAIVE_QUERIES:
        original = Query.path(text)
        optimized = original.simplify()
        report = original.compare(optimized, corpus)
        verdict = "verified" if report.equivalent_on_corpus else "BUG!"
        t_orig = time_query(original, workload)
        t_opt = time_query(optimized, workload)
        speedup = t_orig / t_opt if t_opt > 0 else float("inf")
        print(f"  original:  {original}  (size {original.size})")
        print(f"  rewritten: {optimized}  (size {optimized.size})")
        print(f"  equivalence {verdict} on {report.trees_checked} trees; "
              f"{t_orig*1e3:.2f} ms -> {t_opt*1e3:.2f} ms  "
              f"({speedup:.1f}x)")
        print()

    print("=== Phase 3: catching a *wrong* 'optimization' ===\n")
    tempting = Query.path("child[a]/descendant")
    wrong = Query.path("child/descendant[a]")
    report = tempting.compare(wrong, corpus)
    print(f"  {tempting}  vs  {wrong}")
    print(f"  counterexample: {report.counterexample}")


if __name__ == "__main__":
    main()
