"""Static analysis for tree queries: exact containment and satisfiability.

Query containment is the static-analysis workhorse of the XPath literature
(view-based rewriting, access control, schema checks).  For the *downward*
fragment this library decides it **exactly** — a `None` answer is a theorem
over all trees of the alphabet, and every non-containment comes with a
concrete counterexample document.

Run with::

    python examples/containment_checker.py
"""

from repro.decision import exact_contained, exact_equivalent, exact_satisfiable
from repro.trees import to_xml
from repro.xpath import parse_node

CONTAINMENT_CLAIMS = [
    # (small, large, expectation)
    ("<child[a]>", "<descendant[a]>", True),
    ("<descendant[a]>", "<child[a]>", False),
    ("<child[a and leaf]>", "<child[a]>", True),
    ("<(child[a])+[b]>", "<descendant[b]>", True),
    ("<descendant[b]>", "<(child[a])+[b]>", False),
    ("W(<descendant[b and leaf]>)", "<descendant[b]>", True),
    ("not <child>", "not <descendant>", True),
]

EQUIVALENCE_CLAIMS = [
    ("W(<descendant[b]>)", "<descendant[b]>", True),
    ("<(child/child)*[a]>", "<descendant_or_self[a]>", False),
    ("<(child[a])*[b]>", "b or <child[a and <(child[a])*[b]>]>", True),
    # Over the two-letter alphabet, "every child is an a" is the same as
    # "there is no b-child" — the checker proves alphabet-relative theorems.
    ("not <child[not a]>", "not <child[b]>", True),
]

SATISFIABILITY_CLAIMS = [
    ("<child[a]> and <child[b]> and leaf", False),
    ("<child[a]> and <child[b]> and not a", True),
    ("W(<(child/child)+[a]>) and b", True),
    ("a and b", False),  # one label per node: the unique-labelling model
]


def show_tree(tree) -> str:
    return to_xml(tree).strip()


def main() -> None:
    print("=== Exact containment (downward fragment, alphabet {a, b}) ===\n")
    for small, large, expected in CONTAINMENT_CLAIMS:
        witness = exact_contained(parse_node(small), parse_node(large))
        holds = witness is None
        status = "PROVED" if holds else "REFUTED"
        mark = "" if holds == expected else "  << UNEXPECTED"
        print(f"  {small}  ⊑  {large}:  {status}{mark}")
        if witness is not None:
            print(f"      counterexample document: {show_tree(witness)}")
    print()

    print("=== Exact equivalence ===\n")
    for left, right, expected in EQUIVALENCE_CLAIMS:
        witness = exact_equivalent(parse_node(left), parse_node(right))
        holds = witness is None
        status = "THEOREM" if holds else "REFUTED"
        mark = "" if holds == expected else "  << UNEXPECTED"
        print(f"  {left}  ≈  {right}:  {status}{mark}")
        if witness is not None:
            print(f"      distinguishing document: {show_tree(witness)}")
    print()

    print("=== Exact satisfiability ===\n")
    for text, expected in SATISFIABILITY_CLAIMS:
        witness = exact_satisfiable(parse_node(text))
        sat = witness is not None
        mark = "" if sat == expected else "  << UNEXPECTED"
        if sat:
            print(f"  {text}:  SATISFIABLE{mark}")
            print(f"      witness: {show_tree(witness)}")
        else:
            print(f"  {text}:  UNSATISFIABLE{mark}")


if __name__ == "__main__":
    main()
