"""Quickstart: parse an XML document, query it, and walk the paper's diagram.

Run with::

    python examples/quickstart.py
"""

from repro import Query, parse_xml, to_xml
from repro.trees import XmlReadOptions

DOCUMENT = """\
<talk date="15-Dec-2010">
  <speaker uni="Leicester">T. Litak</speaker>
  <title><i>XPath</i> from a Logical Point of View</title>
  <location><i>ATT LT3</i><b>Leicester</b></location>
</talk>
"""


def main() -> None:
    # 1. XML in: the navigational abstraction keeps element structure only
    #    (attributes and text can optionally become synthetic children).
    tree = parse_xml(DOCUMENT)
    print("The document as a labelled sibling-ordered tree:")
    print(tree.pretty())
    print()

    rich = parse_xml(DOCUMENT, XmlReadOptions(attributes_as_children=True))
    print(f"With attributes as children it has {rich.size} nodes "
          f"(plain: {tree.size}).")
    print()

    # 2. Queries: node expressions select nodes, path expressions select
    #    pairs/reachable nodes.
    has_italic = Query.node("<child[i]>")
    print(f"Nodes with an <i> child {has_italic}:")
    for node_id in sorted(has_italic.evaluate(tree)):
        print(f"  node {node_id} = <{tree.labels[node_id]}>")
    print()

    deep_italics = Query.path("descendant[i]")
    print(f"descendant[i] from the root selects: "
          f"{sorted(deep_italics.select(tree))}")
    print()

    # 3. The dialect ladder and the paper's translations.
    regular = Query.node("W(<descendant[b]>) and not <right>")
    print(f"Query:     {regular}")
    print(f"Dialect:   {regular.dialect.value}")
    print(f"FO(MTC):   {regular.to_fo_mtc()}")
    print()

    # 4. Downward queries compile to nested tree walking automata (T3).
    downward = Query.node("<descendant[b]>")
    automaton = downward.to_nested_twa(tree.alphabet)
    accepted = sorted(
        v for v in tree.node_ids if automaton.accepts(tree, scope=v)
    )
    print(f"{downward} as a nested TWA (depth {automaton.depth}) "
          f"accepts at nodes {accepted}")
    print(f"...which matches direct evaluation: "
          f"{sorted(downward.evaluate(tree))}")
    print()

    # 5. Equivalence checking (bounded-exhaustive + randomized corpus).
    left = Query.node("W(<descendant[b]>)")
    right = Query.node("<descendant[b]>")
    print(f"{left}  ≟  {right}")
    report = left.compare(right)
    print(f"  equivalent on the corpus ({report.trees_checked} trees, "
          f"exhaustive to size {report.exhaustive_to}): "
          f"{report.equivalent_on_corpus}")

    wrong = Query.node("<following_sibling[b]>")
    report = Query.node("W(<following_sibling[b]>)").compare(wrong)
    print(f"W(<following_sibling[b]>)  ≟  {wrong}")
    print(f"  counterexample: {report.counterexample}")
    print()

    # 6. And back out to XML.
    print("Serialized back:")
    print(to_xml(tree, indent="  "))


if __name__ == "__main__":
    main()
