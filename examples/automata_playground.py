"""Hands-on tour of the automata layer: walkers, nesting, hedge algebra.

Builds the classic deterministic DFS walker, lifts it into a nested TWA
guard, and closes with the hedge-automaton decision toolbox (boolean
operations, emptiness with witness extraction, containment).

Run with::

    python examples/automata_playground.py
"""

import random

from repro.automata import Move, NestedTWA, TwaBuilder, random_twa
from repro.automata.nested import GuardedTransition
from repro.automata.examples import exists_label, label_count_mod, root_label
from repro.automata.search import swap_preserves_acceptance
from repro.trees import Tree, parse_xml, random_tree, star


def build_dfs_walker() -> NestedTWA:
    """Deterministic depth-first search for a b-labelled leaf.

    State 0: descend; state 1: climb looking for a right sibling; state 2:
    found.  This is the textbook witness that deterministic walkers *can*
    systematically traverse (unlike the memoryless folklore fear) — the
    first/last flags are what make DFS possible.
    """
    b = TwaBuilder(("a", "b"), 3)
    b.add(0, is_leaf=False, move=Move.DOWN_FIRST, target=0)
    b.add(0, label="b", is_leaf=True, move=Move.STAY, target=2)
    b.add(0, label="a", is_leaf=True, move=Move.STAY, target=1)
    b.add(1, is_last=False, move=Move.RIGHT, target=0)
    b.add(1, is_last=True, is_root=False, move=Move.UP, target=1)
    return NestedTWA.from_twa(b.build(initial=0, accepting={2}))


def main() -> None:
    print("=== A deterministic DFS walker ===")
    dfs = build_dfs_walker()
    samples = [
        Tree.build(("a", ["a", ("a", ["b"]), "a"])),
        Tree.build(("a", ["a", ("a", ["a"]), "a"])),
        Tree.build("b"),
    ]
    for tree in samples:
        print(f"  {str(tree.to_shape()):34s} has b-leaf: {dfs.accepts(tree)}")
    print()

    print("=== Nesting: 'every child subtree contains a b-leaf' ===")
    # Walk to each child is unnecessary: one guarded transition per child
    # would need walking anyway — instead express it as ¬∃child(¬test):
    # move down, nondeterministically pick any child, and demand the
    # *negative* guard; accept at top iff no child fails.  Simplest nested
    # rendering: top-level automaton that accepts iff the "some child
    # subtree lacks a b-leaf" automaton rejects.
    picker_transitions = {}
    builder = TwaBuilder(("a", "b"), 1)
    for obs in builder.observations(is_leaf=False):
        picker_transitions[(0, obs)] = frozenset(
            {GuardedTransition(frozenset(), Move.DOWN_FIRST, 1)}
        )
    for obs in builder.observations():
        existing = picker_transitions.get((1, obs), frozenset())
        picker_transitions[(1, obs)] = existing | frozenset(
            {
                GuardedTransition(frozenset(), Move.RIGHT, 1),
                GuardedTransition(frozenset({(0, False)}), Move.STAY, 2),
            }
        )
    some_child_fails = NestedTWA(3, 0, frozenset({2}), picker_transitions, (dfs,))

    top_transitions = {}
    for obs in builder.observations():
        top_transitions[(0, obs)] = frozenset(
            {GuardedTransition(frozenset({(0, False)}), Move.STAY, 1)}
        )
    every_child_ok = NestedTWA(2, 0, frozenset({1}), top_transitions, (some_child_fails,))
    print(f"  nesting depth: {every_child_ok.depth}")
    for tree in [
        Tree.build(("a", [("a", ["b"]), ("a", ["b", "a"])])),
        Tree.build(("a", [("a", ["b"]), ("a", ["a"])])),
        Tree.build("a"),  # vacuously true
    ]:
        print(f"  {str(tree.to_shape()):34s} -> {every_child_ok.accepts(tree)}")
    print()

    print("=== The swap lemma in action ===")
    walker = random_twa(alphabet=("a", "b"), num_states=2, rng=random.Random(7))
    tree = star(5, root_label="a", leaf_label="b")
    verdict = swap_preserves_acceptance(walker, tree, 2, 3)
    print("  equal-behavior leaves of a star are interchangeable:", verdict)
    print()

    print("=== Hedge automata: the decision toolbox ===")
    some_b = exists_label(("a", "b"), "b")
    root_a = root_label(("a", "b"), "a")
    even_a = label_count_mod(("a", "b"), "a", 2, 0)

    both = some_b.intersection(root_a)
    print(f"  'some b AND root a' empty? {both.is_empty()}")
    witness = both.find_tree()
    print(f"  witness: {witness.to_shape()}")
    print(f"  'some b' contains 'some b AND root a'? {some_b.contains(both)}")
    print(f"  converse containment? {both.contains(some_b)}")

    odd_a = label_count_mod(("a", "b"), "a", 2, 1)
    print(f"  'even #a' == complement of 'odd #a'? "
          f"{even_a.equivalent(odd_a.complement())}")

    # Membership scales to big documents.
    big = random_tree(5000, rng=random.Random(1))
    print(f"  membership on a 5000-node document: even #a = {even_a.accepts(big)}"
          f" (true count parity: {big.labels.count('a') % 2 == 0})")
    print()

    print("=== From XML straight to automata ===")
    doc = parse_xml("<library><shelf><book/><book/></shelf><shelf/></library>")
    lang = exists_label(tuple(sorted(doc.alphabet)), "book")
    print(f"  document contains a <book>: {lang.accepts(doc)}")


if __name__ == "__main__":
    main()
