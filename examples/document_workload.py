"""End-to-end case study: a synthetic bibliography corpus under load.

Generates a DBLP-flavoured document (venues → papers → authors/title), runs
a realistic navigational workload through the optimizer and the evaluator,
validates against a DTD, and answers static-analysis questions — both
unconstrained and *relative to the schema* — with the exact decision
procedures.  This is the "downstream user" scenario: the library as an XML
query engine with a verified rewriter and a schema-aware containment
checker.

Run with::

    python examples/document_workload.py [size]
"""

import random
import sys
import time

from repro import Query, parse_xml, to_xml
from repro.automata import Dtd
from repro.decision import (
    exact_contained,
    exact_contained_under,
    exact_satisfiable,
    exact_satisfiable_under,
)
from repro.xpath import Evaluator, is_downward

SCHEMA = Dtd(
    root="bibliography",
    content={
        "bibliography": "(conference | journal)*",
        "conference": "paper+",
        "journal": "paper*",
        "paper": "title, author+, award?, cites?",
        "cites": "paper+",
        "title": "EMPTY",
        "author": "EMPTY",
        "award": "EMPTY",
    },
)


def synthesize_bibliography(venues: int, rng: random.Random) -> str:
    """A random bibliography document as XML text."""
    parts = ["<bibliography>"]
    for __ in range(venues):
        kind = rng.choice(["conference", "journal"])
        parts.append(f"<{kind}>")
        for __ in range(rng.randint(1, 6)):
            parts.append("<paper>")
            parts.append("<title/>")
            for __ in range(rng.randint(1, 4)):
                parts.append("<author/>")
            if rng.random() < 0.3:
                parts.append("<award/>")
            if rng.random() < 0.5:
                parts.append("<cites><paper><title/><author/></paper></cites>")
            parts.append("</paper>")
        parts.append(f"</{kind}>")
    parts.append("</bibliography>")
    return "".join(parts)


WORKLOAD = [
    ("papers with an award", "descendant[paper][<child[award]>]"),
    ("single-author papers", "descendant[paper][<child[author]> and not <child[author]/right[author]>]"),
    ("conference papers citing something", "child[conference]/child[paper][<descendant[cites]>]"),
    ("venues with only awarded papers", "child[not <child[paper][not <child[award]>]>]"),
    ("cited titles", "descendant[cites]/descendant[title]"),
]

ANALYSIS = [
    ("awarded ⊑ has-author?", "<child[award]> and <child[author]>", "<child[author]>"),
    ("cites-with-title ⊑ cites?", "<child[cites][<descendant[title]>]>", "<child[cites]>"),
]


def main() -> None:
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 60
    rng = random.Random(2008)
    document = synthesize_bibliography(size, rng)
    tree = parse_xml(document)
    print(f"Synthesized a bibliography with {tree.size} nodes "
          f"({len(tree.alphabet)} distinct tags).\n")

    evaluator = Evaluator(tree)
    print(f"{'workload query':44s} {'hits':>5s} {'raw ms':>8s} {'opt ms':>8s}")
    for name, text in WORKLOAD:
        query = Query.path(text)
        optimized = query.simplify()
        start = time.perf_counter()
        raw_hits = evaluator.image(query.expr, {0})
        raw_ms = (time.perf_counter() - start) * 1000
        start = time.perf_counter()
        opt_hits = evaluator.image(optimized.expr, {0})
        opt_ms = (time.perf_counter() - start) * 1000
        assert raw_hits == opt_hits, "optimizer changed the answer!"
        print(f"{name:44s} {len(raw_hits):5d} {raw_ms:8.2f} {opt_ms:8.2f}")
    print()

    alphabet = tuple(sorted(tree.alphabet))
    print("Static analysis over the document vocabulary:")
    for name, small, large in ANALYSIS:
        witness = exact_contained(
            Query.node(small).expr, Query.node(large).expr, alphabet
        )
        verdict = "holds (proved)" if witness is None else "fails"
        print(f"  {name:40s} {verdict}")
        if witness is not None:
            print(f"    counterexample: {to_xml(witness)}")

    impossible = Query.node("<child[award]> and leaf")
    assert is_downward(impossible.expr)
    witness = exact_satisfiable(impossible.expr, alphabet)
    print(f"  'awarded leaf' satisfiable?             "
          f"{'yes' if witness else 'no (proved unsatisfiable)'}")
    print()

    print("Schema-aware analysis (relative to the bibliography DTD):")
    violation = SCHEMA.validate(tree)
    print(f"  document conforms to the DTD:           "
          f"{'yes' if violation is None else violation}")
    authorless = Query.node("paper and not <child[author]>")
    general = exact_satisfiable(authorless.expr, SCHEMA.elements)
    under = exact_satisfiable_under(authorless.expr, SCHEMA)
    print(f"  'authorless paper': satisfiable in general? "
          f"{'yes' if general else 'no'}; under the DTD? "
          f"{'yes' if under else 'no (proved impossible)'}")
    small = Query.node("<child[award]>")
    large = Query.node("<child[title]>")
    schema_holds = exact_contained_under(small.expr, large.expr, SCHEMA) is None
    general_holds = exact_contained(small.expr, large.expr, SCHEMA.elements) is None
    print(f"  award-bearing ⊑ title-bearing: general? "
          f"{'holds' if general_holds else 'fails'}; under the DTD? "
          f"{'holds (proved)' if schema_holds else 'fails'}")


if __name__ == "__main__":
    main()
