"""A tour of the paper's expressiveness results, executed.

The PODS 2008 paper relates four formalisms on finite sibling-ordered trees:

    Core XPath  ⊊  FO  ⊊  FO(MTC) = Regular XPath(W) = nested TWA  ⊊  MSO

This script walks every link of that chain with concrete, machine-checked
evidence:

1. a query FO *cannot* express (depth parity — EF games) that Regular
   XPath/FO(MTC) can;
2. the T1 translation Regular XPath(W) → FO(MTC), verified on corpora;
3. the T2 back-translation FO(MTC) → Regular XPath on the compositional
   fragment;
4. the T3 compilation of downward queries to nested TWA;
5. the regular upper bound: a hedge automaton for the same language, plus
   the behavior-saturation phenomenon behind the strictness of the last
   inclusion (T5).

Run with::

    python examples/expressiveness_tour.py
"""

import random

from repro import Query
from repro.automata import behavior_accepts, distinct_behavior_count, random_twa
from repro.automata.examples import exists_label, leaf_count_mod
from repro.logic import formula_node_set, parse_formula, unparse_formula
from repro.logic.ef_games import duplicator_wins
from repro.translations import compile_node_expr, mtc_to_node_expr, xpath_to_mtc
from repro.trees import all_trees, chain
from repro.xpath import Evaluator, parse_node


def section(title: str) -> None:
    print()
    print(f"--- {title} ---")


def main() -> None:
    section("1. FO cannot count modulo 2 (EF games)")
    print("Duplicator wins the r-round EF game on chains of length 2^r+2 vs")
    print("2^r+3 over {child}; hence no FO sentence of quantifier rank r")
    print("defines 'even length' — and Core XPath translates into FO:")
    for rounds in (1, 2):
        n = 2**rounds + 2
        wins = duplicator_wins(chain(n), chain(n + 1), rounds, signature=("child",))
        print(f"  r={rounds}: chains {n} vs {n + 1}: duplicator wins = {wins}")
    print("FO(MTC) *does* express it — even depth via TC over grandchild:")
    even = parse_formula(
        "exists r. root(r) & rtc[u,v](exists w. child(u,w) & child(w,v))(r,x)"
    )
    t = chain(7)
    print(f"  on a 7-chain, even-depth nodes: {sorted(formula_node_set(t, even, 'x'))}")

    section("2. T1: Regular XPath(W) -> FO(MTC)")
    q = Query.node("W(<descendant[b]>) and not <child[a]>")
    formula = q.to_fo_mtc()
    print(f"  query:   {q}")
    print(f"  formula: {unparse_formula(formula)[:100]}...")
    agree = all(
        set(q.evaluate(tree)) == formula_node_set(tree, formula, "x")
        for tree in all_trees(4)
    )
    print(f"  agreement on ALL 102 trees of size <= 4: {agree}")

    section("3. T2: FO(MTC) -> Regular XPath (compositional fragment)")
    f = parse_formula("exists y. tc[u,v](child(u,v) & a(v))(x,y) & leaf(y)")
    back = mtc_to_node_expr(f, "x")
    print(f"  formula: {unparse_formula(f)}")
    print(f"  xpath:   {back}")
    agree = all(
        formula_node_set(tree, f, "x") == set(Evaluator(tree).nodes(back))
        for tree in all_trees(4)
    )
    print(f"  agreement on ALL 102 trees of size <= 4: {agree}")

    section("4. T3: downward queries -> nested TWA")
    expr = parse_node("not <child[not <child[a]>]>")
    automaton = compile_node_expr(expr, ("a", "b"))
    print(f"  query: {expr}   (nesting depth {automaton.depth})")
    agree = all(
        {v for v in tree.node_ids if automaton.accepts(tree, scope=v)}
        == set(Evaluator(tree).nodes(expr))
        for tree in all_trees(4)
    )
    print(f"  agreement on ALL 102 trees of size <= 4: {agree}")

    section("5. T4/T5: the regular upper bound, and why it is strict")
    hedge = exists_label(("a", "b"), "b")
    walking = compile_node_expr(parse_node("<descendant_or_self[b]>"), ("a", "b"))
    agree = all(
        hedge.accepts(tree) == walking.accepts(tree) for tree in all_trees(4)
    )
    print(f"  'some b' as hedge automaton == as nested TWA on all small trees: {agree}")
    print()
    print("  behavior saturation: a FIXED walker realizes only finitely many")
    print("  subtree behaviors on the chain family...")
    walker = random_twa(alphabet=("a",), num_states=2, rng=random.Random(3))
    for upper in (4, 8, 16, 32):
        trees = [chain(n, labels=("a",)) for n in range(1, upper + 1)]
        print(f"    chains up to {upper:2d}: "
              f"{distinct_behavior_count(walker, trees)} distinct behaviors")
    print("  ...while the regular family 'leaf count % m == 0' needs m states:")
    for m in (2, 3, 5, 8):
        print(f"    m={m}: hedge automaton with {leaf_count_mod(('a',), m, 0).num_states} states")
    print()
    print("  (cross-check: behavior-based and config-graph membership agree)")
    tree = chain(64, labels=("a",))
    print(f"    on a 64-chain: {walker.accepts(tree)} == {behavior_accepts(walker, tree)}")


if __name__ == "__main__":
    main()
