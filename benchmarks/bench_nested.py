"""Experiment C2b / T3 — the cost of nesting.

Nested subtree tests multiply membership cost by roughly one factor of |T|
per nesting level in our direct evaluator (each node precomputes its
sub-automaton bits).  The series shows depth-0/1/2 on the same trees, plus
the compiled T3 automata from realistic queries.
"""

import random

import pytest

from repro.automata import random_nested_twa
from repro.translations import compile_node_expr
from repro.trees import random_tree
from repro.xpath import parse_node

SIZES = (32, 128, 512)


@pytest.mark.parametrize("depth", (0, 1, 2))
def test_nested_depth_cost(benchmark, depth):
    automaton = random_nested_twa(depth=depth, num_subs=1, rng=random.Random(4))
    tree = random_tree(64, rng=random.Random(1))
    result = benchmark(lambda: automaton.accepts(tree))
    assert result in (True, False)


@pytest.mark.parametrize("size", SIZES)
def test_nested_size_scaling(benchmark, size):
    automaton = random_nested_twa(depth=1, num_subs=2, rng=random.Random(6))
    tree = random_tree(size, rng=random.Random(size))
    result = benchmark(lambda: automaton.accepts(tree))
    assert result in (True, False)


COMPILED = {
    "flat": parse_node("<descendant[b]>"),
    "one-filter": parse_node("<child[<child[a]>]>"),
    "negated": parse_node("not <child[not <child[a]>]>"),
}


@pytest.mark.parametrize("name", sorted(COMPILED))
def test_compiled_query_membership(benchmark, name):
    automaton = compile_node_expr(COMPILED[name], ("a", "b"))
    tree = random_tree(128, rng=random.Random(8))
    result = benchmark(lambda: automaton.accepts(tree))
    assert result in (True, False)


def test_compilation_time(benchmark):
    expr = parse_node("not <child[not <(child[a])*[b and leaf]>]> and W(<descendant>)")
    automaton = benchmark(lambda: compile_node_expr(expr, ("a", "b")))
    assert automaton.depth >= 2
