"""Experiment E2 — the cost of schema-aware exact analysis.

Series: schema-satisfiability exploration time as the DTD grows (more
element declarations ⇒ bigger joint state space) and as the query grows.
"""

import random

import pytest

from repro.automata import Dtd
from repro.decision import exact_satisfiable_under
from repro.xpath import parse_node
from repro.xpath.random_exprs import ExprSampler

BIBLIO = Dtd(
    root="bib",
    content={
        "bib": "(conf | journal)*",
        "conf": "paper+",
        "journal": "paper*",
        "paper": "title, author+, award?",
        "title": "EMPTY",
        "author": "EMPTY",
        "award": "EMPTY",
    },
)


def chain_dtd(depth: int) -> Dtd:
    """A linear DTD: e0 → e1 → ... → e_depth (leaf)."""
    content = {f"e{i}": f"e{i + 1}" for i in range(depth)}
    content[f"e{depth}"] = "EMPTY"
    return Dtd(root="e0", content=content)


@pytest.mark.parametrize("query", ["award", "paper and not <child[award]>"])
def test_biblio_satisfiability(benchmark, query):
    expr = parse_node(query)
    result = benchmark(lambda: exact_satisfiable_under(expr, BIBLIO))
    assert result is None or result.size >= 1


@pytest.mark.parametrize("depth", (2, 4, 8))
def test_dtd_depth_scaling(benchmark, depth):
    schema = chain_dtd(depth)
    expr = parse_node(f"e{depth}")
    result = benchmark(lambda: exact_satisfiable_under(expr, schema))
    assert result is not None and result.height == depth


@pytest.mark.parametrize("budget", (3, 6))
def test_query_size_scaling(benchmark, budget):
    sampler = ExprSampler(
        alphabet=BIBLIO.elements, rng=random.Random(budget), downward_only=True
    )
    expr = sampler.node(budget)
    result = benchmark(lambda: exact_satisfiable_under(expr, BIBLIO))
    assert result is None or result.size >= 1


def test_validation_cost(benchmark):
    from repro.trees import parse_xml

    document = parse_xml(
        "<bib>"
        + "<conf>" + "<paper><title/><author/><award/></paper>" * 20 + "</conf>" * 1
        + "</bib>"
    )
    result = benchmark(lambda: BIBLIO.validate(document))
    assert result is None
