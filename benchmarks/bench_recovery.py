"""Experiment R1 — the durability tax and the recovery clock.

Two questions decide whether the WAL + supervisor machinery is usable in
the serving path:

* **WAL append overhead** — ``TreeRegistry.mutate`` with a WAL attached
  vs the bare registry, on the M1-style mid-tree insert/delete workload
  (n=2048).  One arm per fsync policy (``never``, batched ``64``,
  ``always``); all arms share a group with the bare baseline, so the
  compact schema's per-group p50 ratios read off the overhead directly.
  The acceptance gate is <= 10% for the batched policy.

* **MTTR** — SIGKILL one shard of a supervised pool and measure
  kill-to-first-ok-answer on a tree routed to that shard: liveness
  detection + budgeted respawn + full segment resync + the feeder's
  wait-out-the-restart path, end to end.

* **recovery replay** — :func:`repro.trees.wal.recover` folding a
  300-edit log (snapshot cadence 64) back into a verified registry.

Record results with::

    pytest benchmarks/bench_recovery.py --benchmark-json=BENCH_recovery.json

The committed BENCH_recovery.json uses the repro-bench-compact/1 schema
(see conftest.py / compact_json.py).
"""

import random
import time
import zlib

import pytest

from repro.service import ShardedQueryService, QueryRequest, TreeRegistry
from repro.trees import parse_xml, random_tree
from repro.trees.mutate import DeleteSubtree, InsertSubtree, Relabel
from repro.trees.wal import WriteAheadLog, recover

SIZE = 2048
_SUB = parse_xml("<b><a/><c/></b>")

#: Insert+delete at mid-tree: the tree returns to its starting size every
#: pair, so arms measure a steady-state edit mix, not a growing document.
def _edit_pair(registry):
    registry.mutate("doc", InsertSubtree(parent=SIZE // 2, index=0, subtree=_SUB))
    registry.mutate("doc", DeleteSubtree(node=SIZE // 2 + 1))


@pytest.fixture()
def registry_2048():
    registry = TreeRegistry()
    registry.register("doc", random_tree(SIZE, rng=random.Random(2008)))
    return registry


def test_mutate_no_wal_baseline(benchmark, registry_2048):
    """R1 baseline arm: the bare registry (PR 8 behaviour)."""
    benchmark.group = f"R1 wal append overhead n={SIZE}"
    benchmark(lambda: _edit_pair(registry_2048))
    assert registry_2048.get("doc").size == SIZE


@pytest.mark.parametrize("policy", ["never", 64, "always"])
def test_mutate_with_wal(benchmark, registry_2048, tmp_path, policy):
    """R1 durable arms: the same edits, logged ahead under each policy."""
    benchmark.group = f"R1 wal append overhead n={SIZE}"
    wal = WriteAheadLog.open(tmp_path / "wal", fsync=policy, snapshot_every=None)
    registry_2048.attach_wal(wal)
    try:
        benchmark(lambda: _edit_pair(registry_2048))
    finally:
        wal.close()
    benchmark.extra_info["fsync_policy"] = str(policy)
    assert registry_2048.get("doc").size == SIZE


def test_recovery_replay(benchmark, tmp_path):
    """R1 recovery arm: snapshot + suffix replay of a 300-edit history."""
    benchmark.group = "R1 recovery replay"
    registry = TreeRegistry()
    wal = WriteAheadLog.open(tmp_path / "wal", fsync="never", snapshot_every=64)
    registry.attach_wal(wal)
    registry.register("doc", random_tree(SIZE, rng=random.Random(2008)))
    for i in range(300):
        registry.mutate("doc", Relabel(node=(i * 37) % SIZE, label="zw"[i % 2]))
    wal.close()
    recovered = benchmark(lambda: recover(tmp_path / "wal"))
    assert recovered.epoch("doc") == registry.epoch("doc")
    assert recovered.get("doc") == registry.get("doc")
    benchmark.extra_info["edits"] = 300
    benchmark.extra_info["snapshot_every"] = 64


def test_shard_kill_mttr(benchmark, registry_2048):
    """R1 MTTR: SIGKILL -> respawn -> resync -> first ok answer again."""
    benchmark.group = "R1 shard kill MTTR"
    shards = 2
    victim = zlib.crc32(b"doc") % shards
    request = QueryRequest(op="eval", query="<child[b]>", tree="doc")
    service = ShardedQueryService(
        registry_2048,
        shards=shards,
        workers_per_shard=1,
        max_restarts=50,
        restart_window=3600.0,
        restart_backoff=0.01,
    )

    last_killed = [None]

    def wait_alive():
        # A fresh Process object (not the last round's corpse, which can
        # report alive until reaped) + one warm ok round trip, so every
        # kill lands on a serving shard mid-steady-state.
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            process = service.processes[victim]
            try:
                if process is not last_killed[0] and process.is_alive():
                    if service.run_batch([request])[0].status == "ok":
                        return
            except ValueError:
                pass
            time.sleep(0.01)
        raise AssertionError("victim shard never came back")

    def kill_to_first_ok():
        process = service.processes[victim]
        last_killed[0] = process
        process.kill()
        result = service.submit(request).result(timeout=60.0)
        assert result.status == "ok"

    def setup():
        wait_alive()
        return (), {}

    try:
        benchmark.pedantic(
            kill_to_first_ok, setup=setup, rounds=5, iterations=1, warmup_rounds=0
        )
        benchmark.extra_info["restarts"] = sum(service.restart_counts)
    finally:
        service.shutdown()
