"""Experiment M1 — delta index maintenance vs full reindex.

A live document answers indexed queries between edits, so the cost that
matters is *edit + index repair*, not edit alone.  Two arms per point:

* ``delta`` — :func:`repro.trees.mutate.apply_edit_indexed`: structural
  edit plus incremental mask shift/splice + ancestor-chain repair;
* ``reindex`` — the same structural edit followed by a full
  :func:`repro.trees.tree_index` rebuild (the correctness oracle the
  property tests compare the delta path against, bit for bit).

Series: one (size, kind) grid over graded random trees and the three edit
kinds.  Relabel touches one label column and repairs one ancestor chain,
so its delta arm should be far below the rebuild at every size; insert and
delete pay a mask shift linear in the suffix but still avoid re-deriving
the structural tables.  The compact schema's per-group speedups (delta vs
reindex share a group per size/kind) are what EXPERIMENTS.md quotes.

Record results with::

    pytest benchmarks/bench_mutate.py --benchmark-json=BENCH_mutate.json

The committed BENCH_mutate.json uses the repro-bench-compact/1 schema
(see conftest.py / compact_json.py).
"""

import pytest

from repro.trees import parse_xml, tree_index
from repro.trees.mutate import (
    DeleteSubtree,
    InsertSubtree,
    Relabel,
    apply_edit,
    apply_edit_indexed,
    index_fingerprint,
)

SIZES = (128, 512, 2048)

#: Mid-tree edits (around node size//2): both mask halves are non-trivial,
#: so the shift/splice cost is representative rather than best-case.
_KINDS = ("insert", "delete", "relabel")


def _edit_for(tree, kind):
    node = tree.size // 2
    if kind == "insert":
        return InsertSubtree(parent=node, index=0, subtree=parse_xml("<b><a/><c/></b>"))
    if kind == "delete":
        return DeleteSubtree(node=node)
    return Relabel(node=node, label="z")


@pytest.fixture(scope="module")
def indexed_trees(workload_trees):
    """The benchmark trees with their indexes prebuilt (steady-state input)."""
    for tree in workload_trees.values():
        tree_index(tree)
    return workload_trees


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("kind", _KINDS)
def test_delta_maintenance(benchmark, indexed_trees, kind, size):
    """M1 delta arm: one edit with incremental index repair."""
    benchmark.group = f"M1 {kind} n={size}"
    tree = indexed_trees[size]
    edit = _edit_for(tree, kind)
    result = benchmark(lambda: apply_edit_indexed(tree, edit))
    assert result._engine_index is not None


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("kind", _KINDS)
def test_full_reindex(benchmark, indexed_trees, kind, size):
    """M1 oracle arm: the same edit, index rebuilt from scratch."""
    benchmark.group = f"M1 {kind} n={size}"
    tree = indexed_trees[size]
    edit = _edit_for(tree, kind)
    result = benchmark(lambda: tree_index(apply_edit(tree, edit)))
    assert result is not None


def test_delta_equals_reindex_on_the_bench_grid(indexed_trees):
    """The two arms must agree bit for bit on every benchmarked point —
    otherwise the speedup rows would be comparing different computations."""
    for size, tree in indexed_trees.items():
        for kind in _KINDS:
            edit = _edit_for(tree, kind)
            delta = apply_edit_indexed(tree, edit)
            oracle = apply_edit(tree, edit)
            assert index_fingerprint(delta._engine_index) == index_fingerprint(
                tree_index(oracle)
            ), (size, kind)
