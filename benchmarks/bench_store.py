"""Experiment S1 — disk-backed store: pack, cold load, warm hit.

The store trades resident memory for an mmap read on first touch, so the
numbers that matter are the three points of that trade:

* ``pack`` — serializing a ``TreeIndex`` into an RSTR v1 blob and
  renaming it into place (the write-through cost a mutation pays);
* ``cold`` — :meth:`TreeStore.load`: map the file, CRC-verify the whole
  frame, rebuild the index views (the price of the first touch after an
  eviction), handle released every round so each load is genuinely cold;
* ``warm`` — :meth:`TreeRegistry.get` on a resident tree (the steady
  state the LRU tier is supposed to keep hot paths at).

Series: one size group over the graded workload trees, three arms per
group.  The cold/warm gap is the headline: it is what the registry's
byte budget is buying.  The warm arm should be indistinguishable from a
plain in-memory registry lookup — ``compare_backends.py --store-only``
gates exactly that.

Record results with::

    pytest benchmarks/bench_store.py --benchmark-json=BENCH_store.json

The committed BENCH_store.json uses the repro-bench-compact/1 schema
(see conftest.py / compact_json.py).
"""

import pytest

from repro.service import TreeRegistry
from repro.trees import TreeStore, tree_index
from repro.trees.store import release_tree

SIZES = (128, 512, 2048)


@pytest.fixture(scope="module")
def packed_store(workload_trees, tmp_path_factory):
    """A store holding every workload tree, indexes prebuilt."""
    store = TreeStore(tmp_path_factory.mktemp("bench-store") / "store")
    for size, tree in workload_trees.items():
        tree_index(tree)
        store.pack(f"n{size}", tree, epoch=1)
    return store


@pytest.fixture(scope="module")
def warm_registry(workload_trees, tmp_path_factory):
    """A store-backed registry whose budget keeps every tree resident."""
    registry = TreeRegistry()
    for size, tree in workload_trees.items():
        registry.register(f"n{size}", tree)
    store = TreeStore(tmp_path_factory.mktemp("bench-warm") / "store")
    registry.attach_store(store, resident_budget=1 << 30)
    for size in workload_trees:
        registry.get(f"n{size}")  # fault in: every arm round is a warm hit
    return registry


@pytest.mark.parametrize("size", SIZES)
def test_pack(benchmark, workload_trees, packed_store, size):
    """S1 pack arm: serialize + atomic rename of one tree."""
    benchmark.group = f"S1 n={size}"
    tree = workload_trees[size]
    nbytes = benchmark(lambda: packed_store.pack(f"n{size}", tree, epoch=1))
    assert nbytes > 0


@pytest.mark.parametrize("size", SIZES)
def test_cold_load(benchmark, packed_store, size):
    """S1 cold arm: mmap + full-frame CRC verify + index reconstruction."""
    benchmark.group = f"S1 n={size}"

    def load_and_release():
        tree, epoch = packed_store.load(f"n{size}")
        release_tree(tree)
        return epoch

    assert benchmark(load_and_release) == 1


@pytest.mark.parametrize("size", SIZES)
def test_warm_hit(benchmark, warm_registry, size):
    """S1 warm arm: registry lookup of a resident tree (no store I/O)."""
    benchmark.group = f"S1 n={size}"
    tree = benchmark(lambda: warm_registry.get(f"n{size}"))
    assert tree.size == size


def test_loaded_trees_agree_on_the_bench_grid(workload_trees, packed_store):
    """A store round trip must reproduce the tree exactly on every
    benchmarked point — otherwise the cold arm would be timing a
    different document than the warm arm serves."""
    for size, tree in workload_trees.items():
        loaded, epoch = packed_store.load(f"n{size}")
        assert epoch == 1
        assert loaded == tree, size
        release_tree(loaded)
