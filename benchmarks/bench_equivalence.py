"""Experiment A1 companion — the cost of corpus-based equivalence checking.

Equivalence of Regular XPath queries is EXPTIME-hard in theory; the
practical harness trades completeness for a bounded-exhaustive sweep.  The
series shows how the sweep cost scales with the exhaustive bound (tree
counts grow as Catalan(n-1)·2ⁿ) and with query size.
"""

import random

import pytest

from repro.decision import check_node_equivalence, standard_corpus, verify_scheme
from repro.decision.axioms import scheme_by_name
from repro.xpath import parse_node
from repro.xpath.random_exprs import ExprSampler

LEFT = parse_node("<child[a]/right> or <child[b]>")
RIGHT = parse_node("<child[(a and <right>) or b]>")


@pytest.mark.parametrize("exhaustive", (3, 4, 5))
def test_sweep_cost_by_exhaustive_bound(benchmark, exhaustive):
    corpus = standard_corpus(exhaustive_size=exhaustive, random_count=5)
    report = benchmark(lambda: check_node_equivalence(LEFT, RIGHT, corpus))
    assert report is not None


@pytest.mark.parametrize("budget", (4, 8, 16))
def test_sweep_cost_by_query_size(benchmark, budget):
    corpus = standard_corpus(exhaustive_size=4, random_count=5)
    sampler = ExprSampler(rng=random.Random(budget))
    expr = sampler.node(budget)
    report = benchmark(lambda: check_node_equivalence(expr, expr, corpus))
    assert report.equivalent_on_corpus


@pytest.mark.parametrize("name", ("loeb-desc", "filter-absorb", "within-not"))
def test_axiom_verification_cost(benchmark, name):
    corpus = standard_corpus(exhaustive_size=3, random_count=5, max_random_size=12)
    scheme = scheme_by_name(name)
    report = benchmark(
        lambda: verify_scheme(scheme, corpus, trials=2, rng=random.Random(0))
    )
    assert report.equivalent_on_corpus


@pytest.mark.parametrize("budget", (4, 8, 12))
def test_exact_downward_equivalence_cost(benchmark, budget):
    """The exact procedure explores the reachable-state lattice — worst-case
    exponential in the expression (EXPTIME territory), fast at these sizes."""
    from repro.decision import exact_equivalent

    sampler = ExprSampler(rng=random.Random(budget), downward_only=True)
    left = sampler.node(budget)
    right = sampler.node(budget)
    result = benchmark(lambda: exact_equivalent(left, right))
    assert result is None or result.size >= 1
