"""Experiment S1 — concurrent service throughput and overhead.

Series: (a) end-to-end ``run_batch`` time for a fixed mixed workload as the
worker-pool width grows — the shape shows how far the GIL lets the pure-
Python engines scale before queue/dispatch overhead dominates; (b) the
per-request overhead the service layer adds over calling the evaluator
directly (queue hop, budget construction, breaker acquire, stats); and
(c) batch throughput with a counted fault burst armed, measuring what the
retry + breaker machinery costs while it reroutes.

Experiment S2 (PR 7) rides in the same file: a Zipf-skewed batch — a few
hot (query, tree) pairs dominating a long tail, the distribution a serving
tier actually sees — run three ways: ``baseline`` (the static routing of
PR 4), ``optimized`` (canonicalization + cost-based backend choice, no
result reuse), and ``cached`` (the full semantic result cache).  The
cached point's ``extra`` carries the measured hit rate and cache event
counts into the committed compact JSON, where the CI gate
(``benchmarks/compare_backends.py``) checks them.

Record results with::

    pytest benchmarks/bench_service.py --benchmark-json=BENCH_service.json

The committed BENCH_service.json uses the repro-bench-compact/1 schema
(see conftest.py / compact_json.py).
"""

import os
import random

import pytest

from repro.runtime import faults
from repro.service import (
    QueryRequest,
    QueryService,
    RetryPolicy,
    ShardedQueryService,
    TreeRegistry,
)
from repro.trees import chain, random_tree
from repro.xpath import Evaluator, parse_node

BATCH = 64

#: Distinct documents for the shard sweep: routing is tree-affine
#: (crc32(name) % shards), so the mixed batch must name enough documents
#: to occupy every shard at the widest sweep point.
_SHARD_DOCS = 8

#: One template per op family; the batch cycles through them.
_TEMPLATES = (
    {"op": "eval", "query": "<descendant[a and <right[b]>]>", "tree": "bushy"},
    {"op": "eval", "query": "<(child[a])*[b]>", "tree": "chain"},
    {"op": "select", "query": "descendant[a]", "tree": "bushy"},
    {"op": "check", "formula": "exists x. a(x)", "tree": "bushy"},
)


def _batch(n=BATCH):
    return [
        QueryRequest(**_TEMPLATES[i % len(_TEMPLATES)], id=f"b{i}") for i in range(n)
    ]


#: The S2 request pool, hot-first.  Ranks 0-3 include syntactic variants of
#: one another (``child/child*`` vs ``descendant``), so the semantic cache
#: collapses them onto shared entries; the tail keeps the cache honest with
#: genuinely distinct work.
_ZIPF_POOL = (
    {"op": "eval", "query": "<descendant[a and <right[b]>]>", "tree": "bushy"},
    {"op": "eval", "query": "<child/child*[a and <right[b]>]>", "tree": "bushy"},
    {"op": "select", "query": "descendant[a]", "tree": "bushy"},
    {"op": "select", "query": "child/child*[a]", "tree": "bushy"},
    {"op": "eval", "query": "<(child[a])*[b]>", "tree": "chain"},
    {"op": "check", "formula": "exists x. a(x)", "tree": "bushy"},
    {"op": "eval", "query": "<descendant[b]>", "tree": "chain"},
    {"op": "eval", "query": "<child[a]/descendant[b]>", "tree": "bushy"},
    {"op": "select", "query": "descendant[b]/child", "tree": "chain"},
    {"op": "eval", "query": "<parent*[a]>", "tree": "bushy"},
    {"op": "eval", "query": "<descendant[not <child>]>", "tree": "bushy"},
    {"op": "check", "formula": "exists x. b(x)", "tree": "chain"},
)

ZIPF_BATCH = 96
ZIPF_EXPONENT = 1.1


def zipf_batch(n=ZIPF_BATCH, seed=2008):
    """A Zipf(``ZIPF_EXPONENT``)-weighted sample of the S2 pool (deterministic)."""
    rng = random.Random(seed)
    weights = [1.0 / (rank + 1) ** ZIPF_EXPONENT for rank in range(len(_ZIPF_POOL))]
    return [
        QueryRequest(**rng.choices(_ZIPF_POOL, weights)[0], id=f"z{i}")
        for i in range(n)
    ]


def _sharded_batch(n=BATCH):
    """The same op mix as :func:`_batch`, spread over ``_SHARD_DOCS`` docs."""
    requests = []
    for i in range(n):
        template = dict(_TEMPLATES[i % len(_TEMPLATES)])
        base = template["tree"]
        template["tree"] = f"{base}{i % (_SHARD_DOCS // 2)}"
        requests.append(QueryRequest(**template, id=f"s{i}"))
    return requests


@pytest.fixture(scope="module")
def registry():
    reg = TreeRegistry()
    reg.register("bushy", random_tree(512, rng=random.Random(2008)))
    reg.register("chain", chain(512, labels=("a", "b")))
    for i in range(_SHARD_DOCS // 2):
        reg.register("bushy%d" % i, random_tree(512, rng=random.Random(2008 + i)))
        reg.register("chain%d" % i, chain(512, labels=("a", "b")))
    return reg


@pytest.mark.parametrize("workers", (1, 2, 4, 8))
def test_mixed_batch_throughput(benchmark, registry, workers):
    """S1 series proper: fixed mixed batch, growing worker pool."""
    benchmark.group = f"S1 batch of {BATCH}"
    with QueryService(registry, workers=workers, queue_limit=BATCH) as service:
        results = benchmark(lambda: service.run_batch(_batch()))
    assert all(r.status == "ok" for r in results)


@pytest.mark.parametrize("mode", ("baseline", "optimized", "cached"))
def test_zipf_cache_sweep(benchmark, registry, mode):
    """S2: the Zipf-skewed batch, cached vs uncached.

    ``baseline`` is PR 4's static routing; ``optimized`` adds canonical
    forms + cost-based backend choice but recomputes every result;
    ``cached`` adds the semantic result cache.  The cache persists across
    benchmark rounds (by design — it measures the steady state a serving
    tier reaches), so the cached arm's hit rate approaches 1.0 and its p50
    is the price of a batch of cache lookups.  The recorded ``extra``
    carries the hit rate and event counts for the CI effectiveness gate.
    """
    benchmark.group = f"S2 zipf batch of {ZIPF_BATCH}"
    kwargs = {}
    if mode != "baseline":
        kwargs = {"optimize": True, "result_cache": mode == "cached"}
    with QueryService(
        registry, workers=4, queue_limit=ZIPF_BATCH, **kwargs
    ) as service:
        results = benchmark(lambda: service.run_batch(zipf_batch()))
        snap = service.stats_snapshot()
    assert all(r.status == "ok" for r in results)
    cache = snap.get("result_cache")
    if cache is not None:
        benchmark.extra_info["hit_rate"] = round(cache["hit_rate"], 4)
        benchmark.extra_info["cache_events"] = cache["events"]
    if "optimizer" in snap:
        benchmark.extra_info["backend_choices"] = snap["optimizer"]["choices"]
        benchmark.extra_info["seconds_per_unit"] = {
            backend: float(f"{rate:.3g}")
            for backend, rate in snap["optimizer"]["rates"].items()
        }


@pytest.mark.parametrize(
    "shards", tuple(sorted({1, 2, 4, os.cpu_count() or 1}))
)
def test_sharded_batch_scaling(benchmark, registry, shards):
    """S1 shard sweep: the same mixed batch through the multiprocess tier.

    One point per shard count (1, 2, 4, and the machine's core count); the
    compact schema annotates each point with ``speedup`` over shards=1 and
    ``scaling_efficiency`` (speedup / shards).  The CI gate
    (``benchmarks/compare_scaling.py``) asserts shards=4 is at least twice
    as fast as shards=1 on machines with >= 4 cores.
    """
    benchmark.group = f"S1 shard scaling, batch of {BATCH}"
    with ShardedQueryService(
        registry, shards=shards, workers_per_shard=1, queue_limit=BATCH
    ) as service:
        results = benchmark(lambda: service.run_batch(_sharded_batch()))
    assert all(r.status == "ok" for r in results)


def test_service_overhead_vs_direct_call(benchmark, registry):
    """Single-request round trip through the full service machinery."""
    benchmark.group = "S1 overhead"
    request = QueryRequest(op="eval", query="<descendant[a]>", tree="bushy")
    with QueryService(registry, workers=1) as service:
        result = benchmark(lambda: service.run_batch([request])[0])
    assert result.status == "ok"


def test_direct_call_baseline(benchmark, registry):
    """The same query without the service: the floor for S1 overhead."""
    benchmark.group = "S1 overhead"
    tree = registry.get("bushy")
    expr = parse_node("<descendant[a]>")
    result = benchmark(lambda: sorted(Evaluator(tree, backend="bitset").nodes(expr)))
    assert result


def test_batch_throughput_under_fault_burst(benchmark, registry):
    """Chaos cost: a counted burst forces retries and breaker trips, but the
    batch must still complete with every request resolved."""
    benchmark.group = "S1 chaos"
    service = QueryService(
        registry,
        workers=4,
        queue_limit=BATCH,
        retry=RetryPolicy(max_attempts=2, base_delay=0.0001, max_delay=0.001),
        breaker_threshold=4,
        breaker_cooldown=0.01,
    )

    def run():
        faults.arm("xpath.bitset", times=8)
        faults.arm("service.worker", times=4)
        try:
            return service.run_batch(_batch())
        finally:
            faults.disarm()

    try:
        results = benchmark(run)
        assert all(r.status == "ok" for r in results)
        snap = service.stats_snapshot()
        assert snap["submitted"] == snap["completed"]
    finally:
        service.shutdown()
