"""Compact per-series schema for committed benchmark results.

pytest-benchmark's raw ``--benchmark-json`` export stores every timed round
of every parametrization plus the full machine fingerprint — hundreds of
thousands of lines for a single suite run, which is useless in review diffs.
What the experiments actually consume is per-series summary statistics, so
the committed ``BENCH_*.json`` files use the compact schema produced here:

* one **series** per test function, with one point per parametrization
  carrying ``p50``/``p90`` (seconds), the round count, and the params;
  points parametrized by ``shards`` additionally carry ``speedup`` (p50 at
  shards=1 over this point's p50, other params equal) and
  ``scaling_efficiency`` (speedup / shards — 1.0 is perfect scaling);
  a benchmark's ``extra_info`` (e.g. the cache-sweep hit rates) is kept
  verbatim under ``extra``;
* a **speedups** table pairing the ``bitset`` engine against its row-wise
  reference (``sets`` or ``table``) at equal parameters, since that ratio is
  the headline number of the C1/C3 experiment rows;
* a trimmed machine/python fingerprint.

The :func:`compact` transform is applied automatically to fresh runs through
the ``pytest_benchmark_update_json`` hook in ``benchmarks/conftest.py``, so
``pytest benchmarks/ --benchmark-only --benchmark-json=BENCH_foo.json``
emits the compact schema directly.  Run this file as a script to re-compact
a raw export in place::

    python benchmarks/compact_json.py BENCH_modelcheck.json
"""

from __future__ import annotations

import json
import sys

SCHEMA = "repro-bench-compact/1"

#: Row-wise reference engine for each accelerated engine.
_REFERENCE_FOR = {"bitset": ("sets", "table")}


def _percentile(data: list[float], q: float) -> float:
    """Linear-interpolation percentile of a non-empty sample."""
    ordered = sorted(data)
    if len(ordered) == 1:
        return ordered[0]
    rank = q * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    return ordered[low] + (rank - low) * (ordered[high] - ordered[low])


def _point_stats(bench: dict) -> dict:
    stats = bench.get("stats", {})
    data = stats.get("data")
    if data:
        p50, p90 = _percentile(data, 0.50), _percentile(data, 0.90)
    else:  # already-compacted or data-stripped exports fall back to summaries
        p50 = stats.get("median", stats.get("mean", 0.0))
        p90 = stats.get("q3", p50)
    return {"p50": p50, "p90": p90, "rounds": stats.get("rounds", len(data or ()))}


def _series_key(bench: dict) -> str:
    return bench["name"].partition("[")[0]


def _annotate_scaling(points: list[dict]) -> None:
    """Attach ``speedup`` / ``scaling_efficiency`` to shard-sweep points.

    For every group of points identical up to their ``shards`` param, the
    shards=1 point is the baseline; each point gets ``speedup`` (baseline
    p50 / point p50) and ``scaling_efficiency`` (speedup / shards, so 1.0
    is perfect linear scaling).  Points without a ``shards`` param — and
    sweeps missing a shards=1 baseline — are left untouched.
    """
    baselines: dict[str, float] = {}
    for point in points:
        params = dict(point.get("params") or {})
        shards = params.pop("shards", None)
        if shards == 1 and point.get("p50"):
            baselines[json.dumps(params, sort_keys=True)] = point["p50"]
    for point in points:
        params = dict(point.get("params") or {})
        shards = params.pop("shards", None)
        if not shards:
            continue
        baseline = baselines.get(json.dumps(params, sort_keys=True))
        if not baseline or not point.get("p50"):
            continue
        speedup = baseline / point["p50"]
        point["speedup"] = round(speedup, 4)
        point["scaling_efficiency"] = round(speedup / shards, 4)


def compact(raw: dict) -> dict:
    """Transform a raw pytest-benchmark export into the compact schema."""
    machine = raw.get("machine_info", {})
    series: dict[str, dict] = {}
    for bench in raw.get("benchmarks", ()):
        test = _series_key(bench)
        entry = series.setdefault(
            test, {"test": test, "group": bench.get("group"), "points": []}
        )
        point = {"params": bench.get("params") or {}}
        point.update(_point_stats(bench))
        extra = bench.get("extra_info") or {}
        if extra:
            point["extra"] = extra
        entry["points"].append(point)

    for entry in series.values():
        _annotate_scaling(entry["points"])

    speedups = []
    for entry in series.values():
        by_params: dict[str, dict[str, dict]] = {}
        for point in entry["points"]:
            params = dict(point["params"])
            backend = params.pop("backend", None)
            if backend is None:
                continue
            by_params.setdefault(json.dumps(params, sort_keys=True), {})[
                backend
            ] = point
        for params_key, backends in sorted(by_params.items()):
            for fast, references in _REFERENCE_FOR.items():
                if fast not in backends:
                    continue
                for reference in references:
                    if reference not in backends:
                        continue
                    fast_p50 = backends[fast]["p50"]
                    speedups.append(
                        {
                            "test": entry["test"],
                            "params": json.loads(params_key),
                            "baseline": reference,
                            "candidate": fast,
                            "p50_speedup": (
                                backends[reference]["p50"] / fast_p50
                                if fast_p50
                                else None
                            ),
                        }
                    )

    return {
        "schema": SCHEMA,
        "datetime": raw.get("datetime"),
        "machine": {
            "system": machine.get("system"),
            "python_version": machine.get("python_version"),
            "cpu": (machine.get("cpu") or {}).get("brand_raw"),
            "cpu_count": (machine.get("cpu") or {}).get("count"),
        },
        "series": sorted(series.values(), key=lambda entry: entry["test"]),
        "speedups": speedups,
    }


def compact_in_place(output_json: dict) -> None:
    """Rewrite a raw export dict to the compact schema (for the pytest hook)."""
    if output_json.get("schema") == SCHEMA:
        return
    replacement = compact(output_json)
    output_json.clear()
    output_json.update(replacement)


def main(argv: list[str]) -> int:
    if not argv:
        print("usage: compact_json.py BENCH_file.json ...", file=sys.stderr)
        return 2
    for path in argv:
        with open(path) as handle:
            raw = json.load(handle)
        if raw.get("schema") == SCHEMA:
            print(f"{path}: already compact")
            continue
        with open(path, "w") as handle:
            json.dump(compact(raw), handle, indent=2)
            handle.write("\n")
        print(f"{path}: compacted ({len(raw.get('benchmarks', ()))} benchmarks)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
