"""Experiment C1 — query evaluation scaling.

Series: evaluation time of a fixed Regular XPath query as tree size grows,
for (a) the optimized image/fixpoint engine and (b) the denotational
reference semantics.  Expected shape: (a) grows roughly linearly in |T|,
(b) at least quadratically — the gap that motivated Core XPath's isolation
(Gottlob–Koch–Pichler O(|Q|·|T|) evaluation).
"""

import random

import pytest

from repro.trees import chain, random_tree
from repro.xpath import Evaluator, parse_node, parse_path, path_pairs
from repro.xpath.reference import node_set as reference_node_set

QUERY = parse_node("<descendant[a and <right[b]>]> and not <child[not <child>]>")
STAR_QUERY = parse_path("(child[a] | child[b]/right)*")

SIZES = (128, 512, 2048)


@pytest.mark.parametrize("size", SIZES)
def test_optimized_node_evaluation(benchmark, size):
    tree = random_tree(size, rng=random.Random(size))
    result = benchmark(lambda: Evaluator(tree).nodes(QUERY))
    assert result is not None


@pytest.mark.parametrize("size", (64, 128, 256))
def test_reference_node_evaluation(benchmark, size):
    # Reference semantics materializes O(n²) relations — keep sizes small.
    tree = random_tree(size, rng=random.Random(size))
    result = benchmark(lambda: reference_node_set(tree, QUERY))
    assert result is not None


@pytest.mark.parametrize("size", SIZES)
def test_star_image_from_root(benchmark, size):
    tree = random_tree(size, rng=random.Random(size * 3 + 1))
    evaluator = Evaluator(tree)
    result = benchmark(lambda: evaluator.image(STAR_QUERY, {0}))
    assert result is not None


@pytest.mark.parametrize("shape", ("chain", "comb", "bushy"))
def test_shape_sensitivity(benchmark, shape, shaped_trees):
    tree = shaped_trees[shape]
    result = benchmark(lambda: Evaluator(tree).nodes(QUERY))
    assert result is not None


def test_deep_chain_star(benchmark):
    tree = chain(4096, labels=("a", "b"))
    q = parse_path("(child/child)*")
    result = benchmark(lambda: Evaluator(tree).image(q, {0}))
    assert len(result) == 2048


@pytest.mark.parametrize("size", (64, 128))
def test_full_relation_materialization(benchmark, size):
    # pairs() is the O(n · image) fallback — quadratic by construction.
    tree = random_tree(size, rng=random.Random(size + 9))
    result = benchmark(lambda: path_pairs(tree, parse_path("descendant[a]")))
    assert result is not None
