"""Experiment C1 — query evaluation scaling, sets vs bitset backends.

Series: evaluation time of a fixed Regular XPath query as tree size grows,
for (a) the two optimized image/fixpoint engines — the AST-walking ``sets``
backend and the compiled-plan ``bitset`` backend — and (b) the denotational
reference semantics.  Expected shape: (a) grows roughly linearly in |T|,
(b) at least quadratically — the gap that motivated Core XPath's isolation
(Gottlob–Koch–Pichler O(|Q|·|T|) evaluation).  Within (a), the bitset
backend should hold a ≥10× lead on the C1 series at size 2048 (guarded by
``benchmarks/compare_backends.py``; record results with
``pytest benchmarks/bench_eval.py --benchmark-json=BENCH_eval.json``).

Each timed call constructs a fresh evaluator, so what is measured is a full
evaluation (per-tree index construction and plan compilation are amortized
one-time costs, cached on the tree across iterations).
"""

import random

import pytest

from repro.trees import chain, random_tree
from repro.xpath import BACKENDS, Evaluator, parse_node, parse_path, path_pairs
from repro.xpath.reference import node_set as reference_node_set

QUERY = parse_node("<descendant[a and <right[b]>]> and not <child[not <child>]>")
STAR_QUERY = parse_path("(child[a] | child[b]/right)*")

SIZES = (128, 512, 2048)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("size", SIZES)
def test_node_evaluation(benchmark, size, backend):
    """The C1 series proper: fixed node query, growing trees, both backends."""
    tree = random_tree(size, rng=random.Random(size))
    benchmark.group = f"C1 nodes n={size}"
    result = benchmark(lambda: Evaluator(tree, backend=backend).nodes(QUERY))
    assert result is not None


@pytest.mark.parametrize("size", (64, 128, 256))
def test_reference_node_evaluation(benchmark, size):
    # Reference semantics materializes O(n²) relations — keep sizes small.
    tree = random_tree(size, rng=random.Random(size))
    result = benchmark(lambda: reference_node_set(tree, QUERY))
    assert result is not None


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("size", SIZES)
def test_star_image_from_root(benchmark, size, backend):
    tree = random_tree(size, rng=random.Random(size * 3 + 1))
    benchmark.group = f"C1 star n={size}"
    evaluator = Evaluator(tree, backend=backend)
    result = benchmark(lambda: evaluator.image(STAR_QUERY, {0}))
    assert result is not None


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("shape", ("chain", "comb", "bushy"))
def test_shape_sensitivity(benchmark, shape, backend, shaped_trees):
    tree = shaped_trees[shape]
    benchmark.group = f"C1 shape {shape}"
    result = benchmark(lambda: Evaluator(tree, backend=backend).nodes(QUERY))
    assert result is not None


@pytest.mark.parametrize("backend", BACKENDS)
def test_deep_chain_star(benchmark, backend):
    tree = chain(4096, labels=("a", "b"))
    q = parse_path("(child/child)*")
    benchmark.group = "C1 deep chain star"
    evaluator = Evaluator(tree, backend=backend)
    result = benchmark(lambda: evaluator.image(q, {0}))
    assert len(result) == 2048


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("size", (64, 128))
def test_full_relation_materialization(benchmark, size, backend):
    # pairs() of a filtered axis: per-source images of the (compiled) plan.
    tree = random_tree(size, rng=random.Random(size + 9))
    benchmark.group = f"C1 pairs n={size}"
    evaluator = Evaluator(tree, backend=backend)
    result = benchmark(lambda: evaluator.pairs(parse_path("descendant[a]")))
    assert result is not None


@pytest.mark.parametrize("size", (64, 128))
def test_full_relation_reference(benchmark, size):
    tree = random_tree(size, rng=random.Random(size + 9))
    result = benchmark(lambda: path_pairs(tree, parse_path("descendant[a]")))
    assert result is not None


@pytest.mark.parametrize("backend", BACKENDS)
def test_interval_pairs_fast_path(benchmark, backend):
    # Bare transitive axes: output-linear interval enumeration.
    tree = random_tree(512, rng=random.Random(17))
    evaluator = Evaluator(tree, backend=backend)
    benchmark.group = "C1 interval pairs"
    result = benchmark(lambda: evaluator.pairs(parse_path("descendant")))
    assert result is not None
