#!/usr/bin/env python
"""Reference-vs-bitset speedup tables for the C1 and C3 series.

Runs the C1 workloads (fixed Regular XPath queries, size-graded random
trees) on both *evaluation* backends and the C3 TC-heavy model-checking
workload on both *checker* backends, prints a speedup table, and exits
non-zero if a bitset engine falls below its regression gate:

* C1 node-evaluation rows: ``--min-speedup`` (default 2×; the headline
  target at size 2048 is ≥10×, recorded in BENCH_eval.json);
* C3 TC-heavy model-checking rows: ``--min-check-speedup`` (default 2×,
  recorded in BENCH_modelcheck.json);
* checkpoint-overhead rows: the same bitset workloads re-run with a
  permissive :class:`~repro.runtime.ExecutionBudget` attached must stay
  within ``--max-overhead`` percent (default 5%) of the unbudgeted run —
  the cooperative cancellation checkpoints are priced at batch boundaries
  precisely so that governance stays effectively free;
* tracing-overhead rows: the same bitset workloads re-run under an
  installed :class:`repro.obs.Tracer` must stay within
  ``--max-trace-overhead`` percent (default 3%) of the default
  tracing-disabled run.  The baseline rows above already *include* the
  disabled instrumentation (every ``obs.span`` call hits the no-op fast
  path), so the headline speedup gates price the disabled overhead, and
  this gate bounds the full cost of turning tracing on — an upper bound
  on what the disabled path could possibly cost.
* disk-backed store rows (PR 10): the same Zipf batch served by a plain
  in-memory registry vs a store-backed registry whose budget keeps every
  tree resident — warm hits must stay within ``--max-store-overhead``
  percent (default 10%) p50 of in-memory serving, since a warm hit is by
  construction the same dict lookup plus an LRU touch.  A cold
  ``TreeStore.load`` row is printed for scale but not gated (its cost is
  the budget trade-off itself, priced in BENCH_store.json);
* semantic-cache rows (PR 7): a Zipf-skewed batch through the service
  twice — optimizer on in both arms, result cache off vs on — gated on
  ``--min-hit-rate`` (default 0.30; the skew guarantees repeats, so a
  lower rate means the canonical keying broke) and ``--min-cache-win``
  percent p50 improvement (default 10%).  The win gate is *skew-guarded*:
  it only applies when the hit-rate gate passed, since without repeats a
  timing win is unattainable by construction.

Usage::

    PYTHONPATH=src python benchmarks/compare_backends.py           # full
    PYTHONPATH=src python benchmarks/compare_backends.py --quick   # CI smoke
    PYTHONPATH=src python benchmarks/compare_backends.py --cache-only
    PYTHONPATH=src python benchmarks/compare_backends.py --store-only
"""

from __future__ import annotations

import argparse
import random
import sys
import time

from repro import obs
from repro.logic import ModelChecker, parse_formula
from repro.runtime import ExecutionBudget
from repro.service import QueryRequest, QueryService, TreeRegistry
from repro.trees import chain, random_deep_tree, random_tree
from repro.xpath import Evaluator, parse_node, parse_path

QUERY = parse_node("<descendant[a and <right[b]>]> and not <child[not <child>]>")
STAR_QUERY = parse_path("(child[a] | child[b]/right)*")
TC_HEAVY = parse_formula(
    "exists x. exists y. tc[u,v](child(u,v) | right(u,v))(x,y) & last(y) & leaf(y)"
)

#: The cache-gate request pool (hot-first; ranks 0-3 are pairwise syntactic
#: variants, so canonical keying must collapse them for the hit-rate gate).
_CACHE_POOL = (
    {"op": "eval", "query": "<descendant[a and <right[b]>]>", "tree": "bushy"},
    {"op": "eval", "query": "<child/child*[a and <right[b]>]>", "tree": "bushy"},
    {"op": "select", "query": "descendant[a]", "tree": "bushy"},
    {"op": "select", "query": "child/child*[a]", "tree": "bushy"},
    {"op": "eval", "query": "<(child[a])*[b]>", "tree": "chain"},
    {"op": "eval", "query": "<descendant[b]>", "tree": "chain"},
    {"op": "eval", "query": "<child[a]/descendant[b]>", "tree": "bushy"},
    {"op": "eval", "query": "<descendant[not <child>]>", "tree": "bushy"},
)

_ZIPF_EXPONENT = 1.1


def _zipf_requests(n: int, seed: int = 2008) -> list[QueryRequest]:
    rng = random.Random(seed)
    weights = [
        1.0 / (rank + 1) ** _ZIPF_EXPONENT for rank in range(len(_CACHE_POOL))
    ]
    return [
        QueryRequest(**rng.choices(_CACHE_POOL, weights)[0], id=f"c{i}")
        for i in range(n)
    ]


def cache_effectiveness(quick: bool, reps: int) -> tuple[tuple, float]:
    """Time the Zipf batch uncached vs cached; a row plus the hit rate.

    Both arms run with the optimizer on (canonical keys, cost-based backend
    choice); only the result cache differs, so the ratio isolates what
    cross-request reuse buys.  The cached service persists across
    repetitions — steady state is what the gate prices.
    """
    size = 256 if quick else 512
    batch = 48 if quick else 96
    registry = TreeRegistry()
    registry.register("bushy", random_tree(size, rng=random.Random(2008)))
    registry.register("chain", chain(size, labels=("a", "b")))
    requests = _zipf_requests(batch)
    with QueryService(
        registry, workers=4, queue_limit=batch, optimize=True, result_cache=False
    ) as uncached, QueryService(
        registry, workers=4, queue_limit=batch, optimize=True, result_cache=True
    ) as cached:
        plain_t, cached_t, ratio = paired_seconds(
            lambda: uncached.run_batch(requests),
            lambda: cached.run_batch(requests),
            reps,
        )
        snapshot = cached.stats_snapshot()["result_cache"]
    row = (f"zipf batch of {batch}", plain_t, cached_t, ratio)
    return row, snapshot["hit_rate"]


def median_seconds(thunk, repetitions: int) -> float:
    thunk()  # warm caches (tree index, compiled plans) outside the timing
    times = []
    for _ in range(repetitions):
        start = time.perf_counter()
        thunk()
        times.append(time.perf_counter() - start)
    times.sort()
    return times[len(times) // 2]


def paired_seconds(baseline, variant, repetitions: int) -> tuple[float, float, float]:
    """Interleaved paired timing for the overhead gates.

    The overhead rows compare the *same* workload under two configurations,
    so the arms are timed back-to-back within each repetition (clock-speed
    drift between separately timed blocks otherwise dwarfs the few-percent
    effects being gated).  Returns each arm's minimum plus the **median of
    the per-repetition variant/baseline ratios** — drift cancels inside a
    repetition and the median discards repetitions where a GC pause or
    scheduler preemption hit one arm, so the ratio isolates the feature's
    own cost.
    """
    baseline()  # warm caches outside the timing
    variant()
    base_times, var_times = [], []
    for repetition in range(repetitions):
        # Alternate the order so ramping interference hits both arms alike.
        first, second = (
            (baseline, variant) if repetition % 2 == 0 else (variant, baseline)
        )
        start = time.perf_counter()
        first()
        middle = time.perf_counter()
        second()
        end = time.perf_counter()
        if repetition % 2 == 0:
            base_times.append(middle - start)
            var_times.append(end - middle)
        else:
            var_times.append(middle - start)
            base_times.append(end - middle)
    ratios = sorted(v / b for b, v in zip(base_times, var_times))
    return min(base_times), min(var_times), ratios[len(ratios) // 2]


def cache_section(args, reps: int) -> list[str]:
    """Print the semantic-cache rows; the list of gate-failure messages."""
    row, hit_rate = cache_effectiveness(args.quick, reps)
    header = (
        f"{'semantic cache':<22} {'uncached':>12} {'cached':>12} {'p50 win':>9}"
    )
    print(header)
    print("-" * len(header))
    name, plain_t, cached_t, ratio = row
    win_pct = (1.0 - ratio) * 100.0
    print(
        f"{name:<22} {plain_t * 1e3:>10.3f}ms {cached_t * 1e3:>10.3f}ms "
        f"{win_pct:>+8.1f}%"
    )
    print(f"{'hit rate':<22} {hit_rate:>36.2%}")
    failures = []
    if hit_rate < args.min_hit_rate:
        failures.append(
            f"FAIL: semantic cache hit rate {hit_rate:.2%} is below the "
            f"{args.min_hit_rate:.0%} gate (canonical keying is not "
            "collapsing the Zipf repeats)"
        )
    elif win_pct < args.min_cache_win:
        # Skew guard: a p50 win is only attainable once the hit-rate gate
        # confirmed the workload's repeats are actually being collapsed.
        failures.append(
            f"FAIL: cached p50 win {win_pct:+.1f}% is below the "
            f"{args.min_cache_win:.1f}% gate at hit rate {hit_rate:.2%}"
        )
    return failures


def store_section(args, reps: int) -> list[str]:
    """Print the disk-backed store rows; the list of gate-failure messages.

    Both arms run the same Zipf batch through identical services; only the
    registry differs — plain in-memory vs store-backed with an ample
    resident budget, every tree faulted in up front.  The ratio therefore
    isolates what the LRU bookkeeping costs on the hot path.  The cold-load
    row re-reads one tree from disk per repetition (handle released each
    time) purely for scale.
    """
    import tempfile
    from pathlib import Path

    from repro.trees import TreeStore, tree_index
    from repro.trees.store import release_tree

    size = 256 if args.quick else 512
    batch = 48 if args.quick else 96
    trees = {
        "bushy": random_tree(size, rng=random.Random(2008)),
        "chain": chain(size, labels=("a", "b")),
    }
    plain = TreeRegistry()
    backed = TreeRegistry()
    for name, tree in trees.items():
        tree_index(tree)  # prebuilt: neither arm times index construction
        plain.register(name, tree)
        backed.register(name, tree)
    tmpdir = tempfile.TemporaryDirectory(prefix="repro-store-gate-")
    store = TreeStore(Path(tmpdir.name) / "store")
    backed.attach_store(store, resident_budget=1 << 30)
    for name in trees:
        backed.get(name)  # fault in: the gated arm serves warm hits only
    requests = _zipf_requests(batch)
    with QueryService(
        plain, workers=4, queue_limit=batch, optimize=True
    ) as base_svc, QueryService(
        backed, workers=4, queue_limit=batch, optimize=True
    ) as store_svc:
        plain_t, store_t, ratio = paired_seconds(
            lambda: base_svc.run_batch(requests),
            lambda: store_svc.run_batch(requests),
            reps,
        )

    def cold_load():
        tree, _ = store.load("bushy")
        release_tree(tree)

    cold_t = median_seconds(cold_load, reps)
    overhead_pct = (ratio - 1.0) * 100.0
    header = (
        f"{'disk-backed store':<22} {'in-memory':>12} {'store-warm':>12} "
        f"{'overhead':>9}"
    )
    print(header)
    print("-" * len(header))
    print(
        f"{f'zipf batch of {batch}':<22} {plain_t * 1e3:>10.3f}ms "
        f"{store_t * 1e3:>10.3f}ms {overhead_pct:>+8.1f}%"
    )
    print(f"{'cold load (1 tree)':<22} {cold_t * 1e3:>23.3f}ms {'(ungated)':>22}")
    tmpdir.cleanup()
    if overhead_pct > args.max_store_overhead:
        return [
            f"FAIL: store-backed warm serving is {overhead_pct:+.1f}% over "
            f"in-memory, beyond the {args.max_store_overhead:.1f}% gate"
        ]
    return []


def run_store_gate(args, reps: int) -> int:
    failures = store_section(args, reps)
    for message in failures:
        print(message, file=sys.stderr)
    if not failures:
        print(
            "OK: store-backed warm serving within "
            f"{args.max_store_overhead:.1f}% of in-memory"
        )
    return 1 if failures else 0


def run_cache_gate(args, reps: int) -> int:
    failures = cache_section(args, reps)
    for message in failures:
        print(message, file=sys.stderr)
    if not failures:
        print(
            f"OK: cache hit rate at or above {args.min_hit_rate:.0%}, "
            f"cached p50 win at or above {args.min_cache_win:.1f}%"
        )
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="small sizes / few reps (CI smoke)"
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=2.0,
        help="fail if the bitset backend is below this on any C1 node row",
    )
    parser.add_argument(
        "--min-check-speedup",
        type=float,
        default=2.0,
        help="fail if the bitset checker is below this on any C3 TC-heavy row",
    )
    parser.add_argument(
        "--max-overhead",
        type=float,
        default=5.0,
        help="fail if attaching a (never-tripping) budget slows the bitset "
        "engines by more than this many percent",
    )
    parser.add_argument(
        "--max-trace-overhead",
        type=float,
        default=3.0,
        help="fail if installing a tracer slows the bitset engines by more "
        "than this many percent over the default tracing-disabled run",
    )
    parser.add_argument(
        "--min-hit-rate",
        type=float,
        default=0.30,
        help="fail if the semantic result cache's hit rate on the Zipf "
        "workload falls below this fraction",
    )
    parser.add_argument(
        "--min-cache-win",
        type=float,
        default=10.0,
        help="fail if the cached arm's p50 is not at least this many "
        "percent faster than the uncached arm (applied only when the "
        "hit-rate gate passed)",
    )
    parser.add_argument(
        "--cache-only",
        action="store_true",
        help="run only the semantic-cache effectiveness rows and gates "
        "(the CI optimizer job)",
    )
    parser.add_argument(
        "--max-store-overhead",
        type=float,
        default=10.0,
        help="fail if warm-hit serving through a store-backed registry is "
        "more than this many percent slower (p50) than in-memory serving",
    )
    parser.add_argument(
        "--store-only",
        action="store_true",
        help="run only the disk-backed store overhead rows and gate "
        "(the CI store job)",
    )
    args = parser.parse_args(argv)

    sizes = (128, 512) if args.quick else (128, 512, 2048)
    check_sizes = (64, 128) if args.quick else (64, 128, 256)
    reps = 5 if args.quick else 15

    if args.cache_only:
        return run_cache_gate(args, reps)
    if args.store_only:
        return run_store_gate(args, reps)

    rows = []
    gate_failures = []
    for size in sizes:
        tree = random_tree(size, rng=random.Random(size))
        sets_t = median_seconds(
            lambda: Evaluator(tree, backend="sets").nodes(QUERY), reps
        )
        bits_t = median_seconds(
            lambda: Evaluator(tree, backend="bitset").nodes(QUERY), reps
        )
        speedup = sets_t / bits_t
        rows.append((f"C1 nodes n={size}", sets_t, bits_t, speedup))
        if speedup < args.min_speedup:
            gate_failures.append((f"C1 nodes n={size}", speedup))

    for size in sizes:
        tree = random_tree(size, rng=random.Random(size * 3 + 1))
        sets_ev = Evaluator(tree, backend="sets")
        bits_ev = Evaluator(tree, backend="bitset")
        sets_t = median_seconds(lambda: sets_ev.image(STAR_QUERY, {0}), reps)
        bits_t = median_seconds(lambda: bits_ev.image(STAR_QUERY, {0}), reps)
        rows.append((f"star image n={size}", sets_t, bits_t, sets_t / bits_t))

    for size in check_sizes:
        tree = random_deep_tree(size, rng=random.Random(size))
        table_t = median_seconds(
            lambda: ModelChecker(tree, backend="table").holds(TC_HEAVY), reps
        )
        bits_t = median_seconds(
            lambda: ModelChecker(tree, backend="bitset").holds(TC_HEAVY), reps
        )
        speedup = table_t / bits_t
        rows.append((f"C3 TC-heavy n={size}", table_t, bits_t, speedup))
        if speedup < args.min_check_speedup:
            gate_failures.append((f"C3 TC-heavy n={size}", speedup))

    # Checkpoint-overhead rows: the same bitset workloads with a permissive
    # budget attached (never trips, but every cooperative checkpoint fires).
    overhead_rows = []
    ample = ExecutionBudget(max_steps=1 << 62)
    overhead_reps = reps * 4
    size = sizes[-1]
    tree = random_tree(size, rng=random.Random(size * 3 + 1))
    plain_ev = Evaluator(tree, backend="bitset")
    budget_ev = Evaluator(tree, backend="bitset", budget=ample)
    plain_t, budget_t, ratio = paired_seconds(
        lambda: plain_ev.image(STAR_QUERY, {0}),
        lambda: budget_ev.image(STAR_QUERY, {0}),
        overhead_reps,
    )
    overhead_rows.append((f"star image n={size}", plain_t, budget_t, ratio))

    size = check_sizes[-1]
    tree = random_deep_tree(size, rng=random.Random(size))
    plain_t, budget_t, ratio = paired_seconds(
        lambda: ModelChecker(tree, backend="bitset").holds(TC_HEAVY),
        lambda: ModelChecker(tree, backend="bitset", budget=ample).holds(TC_HEAVY),
        overhead_reps,
    )
    overhead_rows.append((f"C3 TC-heavy n={size}", plain_t, budget_t, ratio))

    # Tracing-overhead rows: same bitset workloads with a tracer installed
    # for the traced arm (the CLI ``--trace`` usage pattern).  Always
    # measured at the full sizes: the per-call span cost is constant, so
    # tiny quick-mode workloads would measure tracer setup, not tracing.
    trace_tracer = obs.Tracer()  # one tracer reused across repetitions:
    # installing is a global assignment, so the timed arm pays for spans,
    # not for tracer construction.

    def with_tracer(thunk):
        def run():
            obs.install(trace_tracer)
            try:
                thunk()
            finally:
                obs.uninstall()

        return run

    trace_rows = []
    size = 4096
    tree = random_tree(size, rng=random.Random(size * 3 + 1))
    trace_ev = Evaluator(tree, backend="bitset")
    plain_t, traced_t, ratio = paired_seconds(
        lambda: trace_ev.image(STAR_QUERY, {0}),
        with_tracer(lambda: trace_ev.image(STAR_QUERY, {0})),
        overhead_reps,
    )
    trace_rows.append((f"star image n={size}", plain_t, traced_t, ratio))

    size = 512
    tree = random_deep_tree(size, rng=random.Random(size))
    plain_t, traced_t, ratio = paired_seconds(
        lambda: ModelChecker(tree, backend="bitset").holds(TC_HEAVY),
        with_tracer(lambda: ModelChecker(tree, backend="bitset").holds(TC_HEAVY)),
        overhead_reps,
    )
    trace_rows.append((f"C3 TC-heavy n={size}", plain_t, traced_t, ratio))

    header = f"{'workload':<22} {'reference':>12} {'bitset':>12} {'speedup':>9}"
    print(header)
    print("-" * len(header))
    for name, sets_t, bits_t, speedup in rows:
        print(
            f"{name:<22} {sets_t * 1e3:>10.3f}ms {bits_t * 1e3:>10.3f}ms "
            f"{speedup:>8.1f}x"
        )

    print()
    header = f"{'checkpoint overhead':<22} {'unbudgeted':>12} {'budgeted':>12} {'overhead':>9}"
    print(header)
    print("-" * len(header))
    for name, plain_t, budget_t, ratio in overhead_rows:
        overhead_pct = (ratio - 1.0) * 100.0
        print(
            f"{name:<22} {plain_t * 1e3:>10.3f}ms {budget_t * 1e3:>10.3f}ms "
            f"{overhead_pct:>+8.1f}%"
        )
        if overhead_pct > args.max_overhead:
            gate_failures.append((f"overhead {name}", overhead_pct))

    print()
    header = f"{'tracing overhead':<22} {'disabled':>12} {'traced':>12} {'overhead':>9}"
    print(header)
    print("-" * len(header))
    for name, plain_t, traced_t, ratio in trace_rows:
        overhead_pct = (ratio - 1.0) * 100.0
        print(
            f"{name:<22} {plain_t * 1e3:>10.3f}ms {traced_t * 1e3:>10.3f}ms "
            f"{overhead_pct:>+8.1f}%"
        )
        if overhead_pct > args.max_trace_overhead:
            gate_failures.append((f"tracing {name}", overhead_pct))

    print()
    cache_failures = cache_section(args, reps)
    print()
    cache_failures += store_section(args, reps)

    if gate_failures or cache_failures:
        for name, value in gate_failures:
            if name.startswith("overhead"):
                print(
                    f"FAIL: {name} checkpoint overhead {value:+.1f}% exceeds "
                    f"the {args.max_overhead:.1f}% gate",
                    file=sys.stderr,
                )
                continue
            if name.startswith("tracing"):
                print(
                    f"FAIL: {name} tracing overhead {value:+.1f}% exceeds "
                    f"the {args.max_trace_overhead:.1f}% gate",
                    file=sys.stderr,
                )
                continue
            gate = (
                args.min_check_speedup if name.startswith("C3") else args.min_speedup
            )
            print(
                f"FAIL: {name} speedup {value:.2f}x is below the "
                f"{gate:.1f}x regression gate",
                file=sys.stderr,
            )
        for message in cache_failures:
            print(message, file=sys.stderr)
        return 1
    print(
        f"OK: C1 node rows at or above {args.min_speedup:.1f}x, "
        f"C3 TC-heavy rows at or above {args.min_check_speedup:.1f}x, "
        f"checkpoint overhead within {args.max_overhead:.1f}%, "
        f"tracing overhead within {args.max_trace_overhead:.1f}%, "
        f"cache hit rate at or above {args.min_hit_rate:.0%} with a "
        f">={args.min_cache_win:.1f}% p50 win, store warm hits within "
        f"{args.max_store_overhead:.1f}%"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
