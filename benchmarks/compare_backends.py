#!/usr/bin/env python
"""Reference-vs-bitset speedup tables for the C1 and C3 series.

Runs the C1 workloads (fixed Regular XPath queries, size-graded random
trees) on both *evaluation* backends and the C3 TC-heavy model-checking
workload on both *checker* backends, prints a speedup table, and exits
non-zero if a bitset engine falls below its regression gate:

* C1 node-evaluation rows: ``--min-speedup`` (default 2×; the headline
  target at size 2048 is ≥10×, recorded in BENCH_eval.json);
* C3 TC-heavy model-checking rows: ``--min-check-speedup`` (default 2×,
  recorded in BENCH_modelcheck.json);
* checkpoint-overhead rows: the same bitset workloads re-run with a
  permissive :class:`~repro.runtime.ExecutionBudget` attached must stay
  within ``--max-overhead`` percent (default 5%) of the unbudgeted run —
  the cooperative cancellation checkpoints are priced at batch boundaries
  precisely so that governance stays effectively free.

Usage::

    PYTHONPATH=src python benchmarks/compare_backends.py           # full
    PYTHONPATH=src python benchmarks/compare_backends.py --quick   # CI smoke
"""

from __future__ import annotations

import argparse
import random
import sys
import time

from repro.logic import ModelChecker, parse_formula
from repro.runtime import ExecutionBudget
from repro.trees import random_deep_tree, random_tree
from repro.xpath import Evaluator, parse_node, parse_path

QUERY = parse_node("<descendant[a and <right[b]>]> and not <child[not <child>]>")
STAR_QUERY = parse_path("(child[a] | child[b]/right)*")
TC_HEAVY = parse_formula(
    "exists x. exists y. tc[u,v](child(u,v) | right(u,v))(x,y) & last(y) & leaf(y)"
)


def median_seconds(thunk, repetitions: int) -> float:
    thunk()  # warm caches (tree index, compiled plans) outside the timing
    times = []
    for _ in range(repetitions):
        start = time.perf_counter()
        thunk()
        times.append(time.perf_counter() - start)
    times.sort()
    return times[len(times) // 2]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="small sizes / few reps (CI smoke)"
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=2.0,
        help="fail if the bitset backend is below this on any C1 node row",
    )
    parser.add_argument(
        "--min-check-speedup",
        type=float,
        default=2.0,
        help="fail if the bitset checker is below this on any C3 TC-heavy row",
    )
    parser.add_argument(
        "--max-overhead",
        type=float,
        default=5.0,
        help="fail if attaching a (never-tripping) budget slows the bitset "
        "engines by more than this many percent",
    )
    args = parser.parse_args(argv)

    sizes = (128, 512) if args.quick else (128, 512, 2048)
    check_sizes = (64, 128) if args.quick else (64, 128, 256)
    reps = 5 if args.quick else 15

    rows = []
    gate_failures = []
    for size in sizes:
        tree = random_tree(size, rng=random.Random(size))
        sets_t = median_seconds(
            lambda: Evaluator(tree, backend="sets").nodes(QUERY), reps
        )
        bits_t = median_seconds(
            lambda: Evaluator(tree, backend="bitset").nodes(QUERY), reps
        )
        speedup = sets_t / bits_t
        rows.append((f"C1 nodes n={size}", sets_t, bits_t, speedup))
        if speedup < args.min_speedup:
            gate_failures.append((f"C1 nodes n={size}", speedup))

    for size in sizes:
        tree = random_tree(size, rng=random.Random(size * 3 + 1))
        sets_ev = Evaluator(tree, backend="sets")
        bits_ev = Evaluator(tree, backend="bitset")
        sets_t = median_seconds(lambda: sets_ev.image(STAR_QUERY, {0}), reps)
        bits_t = median_seconds(lambda: bits_ev.image(STAR_QUERY, {0}), reps)
        rows.append((f"star image n={size}", sets_t, bits_t, sets_t / bits_t))

    for size in check_sizes:
        tree = random_deep_tree(size, rng=random.Random(size))
        table_t = median_seconds(
            lambda: ModelChecker(tree, backend="table").holds(TC_HEAVY), reps
        )
        bits_t = median_seconds(
            lambda: ModelChecker(tree, backend="bitset").holds(TC_HEAVY), reps
        )
        speedup = table_t / bits_t
        rows.append((f"C3 TC-heavy n={size}", table_t, bits_t, speedup))
        if speedup < args.min_check_speedup:
            gate_failures.append((f"C3 TC-heavy n={size}", speedup))

    # Checkpoint-overhead rows: the same bitset workloads with a permissive
    # budget attached (never trips, but every cooperative checkpoint fires).
    overhead_rows = []
    ample = ExecutionBudget(max_steps=1 << 62)
    overhead_reps = reps * 2
    size = sizes[-1]
    tree = random_tree(size, rng=random.Random(size * 3 + 1))
    plain_ev = Evaluator(tree, backend="bitset")
    budget_ev = Evaluator(tree, backend="bitset", budget=ample)
    plain_t = median_seconds(lambda: plain_ev.image(STAR_QUERY, {0}), overhead_reps)
    budget_t = median_seconds(lambda: budget_ev.image(STAR_QUERY, {0}), overhead_reps)
    overhead_rows.append((f"star image n={size}", plain_t, budget_t))

    size = check_sizes[-1]
    tree = random_deep_tree(size, rng=random.Random(size))
    plain_t = median_seconds(
        lambda: ModelChecker(tree, backend="bitset").holds(TC_HEAVY), overhead_reps
    )
    budget_t = median_seconds(
        lambda: ModelChecker(tree, backend="bitset", budget=ample).holds(TC_HEAVY),
        overhead_reps,
    )
    overhead_rows.append((f"C3 TC-heavy n={size}", plain_t, budget_t))

    header = f"{'workload':<22} {'reference':>12} {'bitset':>12} {'speedup':>9}"
    print(header)
    print("-" * len(header))
    for name, sets_t, bits_t, speedup in rows:
        print(
            f"{name:<22} {sets_t * 1e3:>10.3f}ms {bits_t * 1e3:>10.3f}ms "
            f"{speedup:>8.1f}x"
        )

    print()
    header = f"{'checkpoint overhead':<22} {'unbudgeted':>12} {'budgeted':>12} {'overhead':>9}"
    print(header)
    print("-" * len(header))
    for name, plain_t, budget_t in overhead_rows:
        overhead_pct = (budget_t / plain_t - 1.0) * 100.0
        print(
            f"{name:<22} {plain_t * 1e3:>10.3f}ms {budget_t * 1e3:>10.3f}ms "
            f"{overhead_pct:>+8.1f}%"
        )
        if overhead_pct > args.max_overhead:
            gate_failures.append((f"overhead {name}", overhead_pct))

    if gate_failures:
        for name, value in gate_failures:
            if name.startswith("overhead"):
                print(
                    f"FAIL: {name} checkpoint overhead {value:+.1f}% exceeds "
                    f"the {args.max_overhead:.1f}% gate",
                    file=sys.stderr,
                )
                continue
            gate = (
                args.min_check_speedup if name.startswith("C3") else args.min_speedup
            )
            print(
                f"FAIL: {name} speedup {value:.2f}x is below the "
                f"{gate:.1f}x regression gate",
                file=sys.stderr,
            )
        return 1
    print(
        f"OK: C1 node rows at or above {args.min_speedup:.1f}x, "
        f"C3 TC-heavy rows at or above {args.min_check_speedup:.1f}x, "
        f"checkpoint overhead within {args.max_overhead:.1f}%"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
