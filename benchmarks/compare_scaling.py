"""CI gate: the shard pool must actually beat the GIL.

Reads a compact ``BENCH_service.json`` (repro-bench-compact/1) and asserts
that the ``test_sharded_batch_scaling`` sweep shows the 64-request mixed
batch at **shards=4 running at least ``--min-speedup`` (default 2.0×)
faster than shards=1**.

The gate is *cores-guarded*: multiprocess scaling is physics, not code —
on a machine with fewer than 4 usable cores the 2× bound is unattainable
and the gate reports SKIP (exit 0) rather than a fake failure.  The core
count is taken from the benchmark file's machine fingerprint when present
(so the gate judges the machine that *ran* the sweep), falling back to the
current machine.

Usage::

    python benchmarks/compare_scaling.py BENCH_service.json
    python benchmarks/compare_scaling.py BENCH_service.json --min-speedup 2.0
"""

from __future__ import annotations

import argparse
import json
import os
import sys

SWEEP_TEST = "test_sharded_batch_scaling"
BASELINE_SHARDS = 1
GATED_SHARDS = 4


def usable_cores() -> int | None:
    """Cores this process may actually run on — affinity, not the host count.

    Containerized CI runners routinely pin a job to a subset of the host's
    cores while ``os.cpu_count()`` keeps reporting the host, so a 4-shard
    speedup gate would demand parallelism the scheduler will never grant.
    Prefers :func:`os.sched_getaffinity`, falls back to parsing
    ``Cpus_allowed_list`` from ``/proc/self/status``, and returns ``None``
    when neither is available (non-Linux), leaving the caller to trust the
    advertised count.
    """
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        pass
    try:
        with open("/proc/self/status") as handle:
            for line in handle:
                if line.startswith("Cpus_allowed_list:"):
                    count = 0
                    for part in line.split(":", 1)[1].strip().split(","):
                        low, _, high = part.partition("-")
                        count += (int(high) - int(low) + 1) if high else 1
                    return count or None
    except (OSError, ValueError):
        pass
    return None


def find_sweep_points(report: dict) -> dict[int, dict]:
    for entry in report.get("series", ()):
        if entry.get("test") == SWEEP_TEST:
            return {
                point["params"]["shards"]: point
                for point in entry.get("points", ())
                if "shards" in (point.get("params") or {})
            }
    return {}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("report", help="compact BENCH_service.json path")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=2.0,
        help="required p50 speedup of shards=4 over shards=1 (default 2.0)",
    )
    args = parser.parse_args(argv)

    with open(args.report) as handle:
        report = json.load(handle)
    if report.get("schema") != "repro-bench-compact/1":
        print(f"FAIL: {args.report} is not a repro-bench-compact/1 report")
        return 1

    advertised = report.get("machine", {}).get("cpu_count") or os.cpu_count() or 1
    affinity = usable_cores()
    # Judge by the *effective* parallelism: a runner advertising 8 cores
    # but pinned to 2 by its cgroup cannot honour a 4-shard speedup.
    cores = min(advertised, affinity) if affinity else advertised
    pinned = affinity is not None and affinity < advertised
    how = (
        f"{cores} usable core(s) (affinity-limited from {advertised})"
        if pinned
        else f"{cores} core(s)"
    )
    points = find_sweep_points(report)
    if GATED_SHARDS not in points or BASELINE_SHARDS not in points:
        if cores < GATED_SHARDS:
            print(
                f"SKIP: sweep has no shards={GATED_SHARDS} point and the "
                f"recording machine has {how} — scaling to "
                f"{GATED_SHARDS} shards is not measurable here"
            )
            return 0
        print(
            f"FAIL: {args.report} has no {SWEEP_TEST} points for "
            f"shards={BASELINE_SHARDS} and shards={GATED_SHARDS}"
        )
        return 1
    if cores < GATED_SHARDS:
        print(
            f"SKIP: recording machine has {how} < {GATED_SHARDS}; "
            f"a {args.min_speedup}x multiprocess speedup is physically "
            "unattainable — gate not applicable"
        )
        return 0

    baseline = points[BASELINE_SHARDS]["p50"]
    gated = points[GATED_SHARDS]["p50"]
    if not baseline or not gated:
        print("FAIL: sweep points carry no p50 timings")
        return 1
    speedup = baseline / gated
    efficiency = speedup / GATED_SHARDS
    verdict = "PASS" if speedup >= args.min_speedup else "FAIL"
    print(
        f"{verdict}: shards={GATED_SHARDS} p50 {gated * 1e3:.2f} ms vs "
        f"shards={BASELINE_SHARDS} p50 {baseline * 1e3:.2f} ms -> "
        f"{speedup:.2f}x (required {args.min_speedup:.2f}x, "
        f"efficiency {efficiency:.2f})"
    )
    return 0 if verdict == "PASS" else 1


if __name__ == "__main__":
    sys.exit(main())
