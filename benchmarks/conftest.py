"""Shared benchmark workloads.

Each ``bench_*.py`` module regenerates one experiment row/series from
EXPERIMENTS.md; run them with::

    pytest benchmarks/ --benchmark-only

The sizes are laptop-scale by design: what the experiments measure is the
*shape* of the curves (linear vs quadratic, saturation vs growth), not
absolute numbers.
"""

import random

import pytest

from repro.trees import chain, comb, random_tree

from compact_json import compact_in_place


def pytest_benchmark_update_json(config, benchmarks, output_json):
    """Emit the compact per-series schema instead of the raw round dumps.

    The committed BENCH_*.json files use repro-bench-compact/1 (p50/p90 per
    parametrization plus bitset-vs-reference speedups); see compact_json.py.
    """
    compact_in_place(output_json)


@pytest.fixture(scope="session")
def workload_trees():
    """Size-graded random trees used across the evaluation benchmarks."""
    rng = random.Random(2008)
    return {size: random_tree(size, rng=rng) for size in (128, 512, 2048)}


@pytest.fixture(scope="session")
def shaped_trees():
    return {
        "chain": chain(1024, labels=("a", "b")),
        "comb": comb(512, "a", "b"),
        "bushy": random_tree(1024, rng=random.Random(7)),
    }
