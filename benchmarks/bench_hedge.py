"""Experiment C4 — hedge automaton operations (the regular-language toolbox).

Membership is linear-ish in |T|; determinization and the derived boolean
operations pay the classical exponential in automaton size — the series
shows the wall between "run it" and "reason about it".
"""

import random

import pytest

from repro.automata.examples import exists_label, label_count_mod, root_label
from repro.trees import random_tree

SIZES = (128, 512, 2048)


@pytest.mark.parametrize("size", SIZES)
def test_membership_scaling(benchmark, size):
    automaton = label_count_mod(("a", "b"), "a", 3, 0)
    tree = random_tree(size, rng=random.Random(size))
    result = benchmark(lambda: automaton.accepts(tree))
    assert result in (True, False)


@pytest.mark.parametrize("modulus", (2, 3, 4))
def test_determinization_cost(benchmark, modulus):
    automaton = label_count_mod(("a", "b"), "a", modulus, 0)
    det = benchmark(automaton.determinize)
    assert det.num_states >= 1


def test_complement_roundtrip(benchmark):
    automaton = exists_label(("a", "b"), "b")
    result = benchmark(automaton.complement)
    assert result is not None


def test_intersection_cost(benchmark):
    left = exists_label(("a", "b"), "b")
    right = label_count_mod(("a", "b"), "a", 3, 1)
    result = benchmark(lambda: left.intersection(right))
    assert result.num_states == left.num_states * right.num_states


def test_emptiness_with_witness(benchmark):
    automaton = exists_label(("a", "b"), "b").intersection(
        root_label(("a", "b"), "a")
    )
    witness = benchmark(automaton.find_tree)
    assert witness is not None


def test_equivalence_check(benchmark):
    odd = label_count_mod(("a", "b"), "b", 2, 1)
    not_even = label_count_mod(("a", "b"), "b", 2, 0).complement()
    result = benchmark(lambda: odd.equivalent(not_even))
    assert result
