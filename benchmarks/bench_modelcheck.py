"""Experiment C3b — FO(MTC) model-checking cost anatomy.

Series: model-checking time as a function of (a) tree size for a fixed
formula, (b) quantifier depth, (c) number of TC operators — the three knobs
that the translation-vs-evaluation gap (C3) decomposes into.  Every series
runs on both checker backends (the row-wise ``table`` reference and the
columnar ``bitset`` engine), so the recorded numbers double as the
model-checking speedup table (see also ``compare_backends.py``, which gates
on the TC-heavy series).
"""

import random

import pytest

from repro.logic import CHECKER_BACKENDS, ModelChecker, parse_formula
from repro.trees import random_deep_tree, random_tree

EXISTS_TOWER = {
    1: "exists y1. child(x,y1)",
    2: "exists y1. child(x,y1) & (exists y2. child(y1,y2))",
    3: "exists y1. child(x,y1) & (exists y2. child(y1,y2) & (exists y3. child(y2,y3)))",
}

TC_FORMULAS = {
    0: "exists y. child(x,y) & a(y)",
    1: "exists y. tc[u,v](child(u,v))(x,y) & a(y)",
    2: "exists y. tc[u,v](child(u,v) & (exists w. tc[p,q](right(p,q))(u,w)))(x,y) & a(y)",
}

#: The TC-heavy sentence of the speedup gate: reachability of a last leaf
#: through the union of both one-step relations.
TC_HEAVY = (
    "exists x. exists y. tc[u,v](child(u,v) | right(u,v))(x,y) "
    "& last(y) & leaf(y)"
)


@pytest.mark.parametrize("backend", CHECKER_BACKENDS)
@pytest.mark.parametrize("size", (16, 32, 64, 128))
def test_size_scaling(benchmark, size, backend):
    tree = random_tree(size, rng=random.Random(size))
    formula = parse_formula("exists y. tc[u,v](child(u,v) & a(v))(x,y) & leaf(y)")
    result = benchmark(
        lambda: ModelChecker(tree, backend=backend).node_set(formula, "x")
    )
    assert isinstance(result, set)


@pytest.mark.parametrize("backend", CHECKER_BACKENDS)
@pytest.mark.parametrize("depth", sorted(EXISTS_TOWER))
def test_quantifier_depth(benchmark, depth, backend):
    tree = random_tree(48, rng=random.Random(7))
    formula = parse_formula(EXISTS_TOWER[depth])
    result = benchmark(
        lambda: ModelChecker(tree, backend=backend).node_set(formula, "x")
    )
    assert isinstance(result, set)


@pytest.mark.parametrize("backend", CHECKER_BACKENDS)
@pytest.mark.parametrize("tc_count", sorted(TC_FORMULAS))
def test_tc_count(benchmark, tc_count, backend):
    tree = random_tree(32, rng=random.Random(9))
    formula = parse_formula(TC_FORMULAS[tc_count])
    result = benchmark(
        lambda: ModelChecker(tree, backend=backend).node_set(formula, "x")
    )
    assert isinstance(result, set)


@pytest.mark.parametrize("backend", CHECKER_BACKENDS)
@pytest.mark.parametrize("size", (64, 128, 256))
def test_tc_heavy_sentence(benchmark, size, backend):
    """The gate series: TC over child|right on deep trees."""
    tree = random_deep_tree(size, rng=random.Random(size))
    formula = parse_formula(TC_HEAVY)
    result = benchmark(lambda: ModelChecker(tree, backend=backend).holds(formula))
    assert isinstance(result, bool)


@pytest.mark.parametrize("backend", CHECKER_BACKENDS)
def test_checker_reuse_amortizes(benchmark, backend):
    """A ModelChecker memoizes per subformula; re-asking is near-free."""
    tree = random_tree(64, rng=random.Random(3))
    formula = parse_formula("exists y. tc[u,v](child(u,v))(x,y) & b(y)")
    checker = ModelChecker(tree, backend=backend)
    checker.node_set(formula, "x")  # warm
    result = benchmark(lambda: checker.node_set(formula, "x"))
    assert isinstance(result, set)
