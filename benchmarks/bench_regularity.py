"""Experiment T4b — the cost of the effective regularity construction.

Series: (a) bottom-up-acceptor membership vs the other two membership
algorithms; (b) exact emptiness / equivalence by state exploration as the
walker grows — the practical face of the exponential in T4's proof.
"""

import random

import pytest

from repro.automata import (
    Move,
    TwaBuilder,
    TwaTreeAcceptor,
    behavior_accepts,
    nested_twa_language_equivalent,
    random_twa,
    twa_find_tree,
    twa_language_equivalent,
)
from repro.translations import compile_node_expr
from repro.trees import random_tree
from repro.xpath import parse_node


def dfs_walker():
    b = TwaBuilder(("a", "b"), 3)
    b.add(0, is_leaf=False, move=Move.DOWN_FIRST, target=0)
    b.add(0, label="b", is_leaf=True, move=Move.STAY, target=2)
    b.add(0, label="a", is_leaf=True, move=Move.STAY, target=1)
    b.add(1, is_last=False, move=Move.RIGHT, target=0)
    b.add(1, is_last=True, is_root=False, move=Move.UP, target=1)
    return b.build(initial=0, accepting={2})


@pytest.mark.parametrize("size", (128, 512, 2048))
def test_acceptor_membership(benchmark, size):
    acceptor = TwaTreeAcceptor(dfs_walker(), ("a", "b"))
    tree = random_tree(size, alphabet=("a",), rng=random.Random(size))
    result = benchmark(lambda: acceptor.accepts(tree))
    assert result is False  # no b-leaf in an all-a tree


@pytest.mark.parametrize("size", (128, 512, 2048))
def test_config_membership_same_workload(benchmark, size):
    automaton = dfs_walker()
    tree = random_tree(size, alphabet=("a",), rng=random.Random(size))
    result = benchmark(lambda: automaton.accepts(tree))
    assert result is False


@pytest.mark.parametrize("states", (1, 2, 3))
def test_exact_emptiness_exploration(benchmark, states):
    automaton = random_twa(num_states=states, rng=random.Random(7), density=0.4)

    def run():
        return twa_find_tree(automaton, ("a", "b"))

    result = benchmark(run)
    assert result is None or result.size >= 1


def test_exact_equivalence_dfs_vs_guesser(benchmark):
    dfs = dfs_walker()
    g = TwaBuilder(("a", "b"), 2)
    g.add(0, label="b", is_leaf=True, move=Move.STAY, target=1)
    g.add(0, move=Move.DOWN_FIRST, target=0)
    g.add(0, move=Move.RIGHT, target=0)
    guesser = g.build(initial=0, accepting={1})
    result = benchmark(lambda: twa_language_equivalent(dfs, guesser, ("a", "b")))
    assert result


def test_exact_nested_equivalence_compiled_queries(benchmark):
    left = compile_node_expr(parse_node("W(<descendant[b]>)"), ("a", "b"))
    right = compile_node_expr(parse_node("<descendant[b]>"), ("a", "b"))
    result = benchmark(
        lambda: nested_twa_language_equivalent(left, right, ("a", "b"))
    )
    assert result
