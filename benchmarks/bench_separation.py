"""Experiment T5 — separation evidence series.

Two curves that the separation argument plays against each other:

* **behavior saturation**: the number of distinct subtree behaviors a fixed
  TWA realizes on a growing tree family *saturates* (it is bounded by a
  function of |Q| alone);
* **regular demand**: the hedge automata for ``leaf count ≡ 0 (mod m)``
  need m states — the family's demand for distinguishable subtree classes
  grows without bound.

Plus the EF-game cost curve for the FO-side parity result.
"""

import random

import pytest

from repro.automata import distinct_behavior_count, random_twa
from repro.automata.examples import leaf_count_mod
from repro.logic.ef_games import duplicator_wins
from repro.trees import chain, star


@pytest.mark.parametrize("family_size", (8, 16, 32))
def test_behavior_counting_cost(benchmark, family_size):
    automaton = random_twa(alphabet=("a",), num_states=3, rng=random.Random(5))
    trees = [chain(n, labels=("a",)) for n in range(1, family_size + 1)]
    count = benchmark(lambda: distinct_behavior_count(automaton, trees))
    assert count <= family_size


def test_behavior_saturation_series():
    automaton = random_twa(alphabet=("a",), num_states=2, rng=random.Random(3))
    series = []
    for upper in (4, 8, 16, 32):
        trees = [chain(n, labels=("a",)) for n in range(1, upper + 1)]
        series.append((upper, distinct_behavior_count(automaton, trees)))
    print("\nT5 behavior saturation (family size -> distinct behaviors):", series)
    assert series[-1][1] == series[-2][1]  # saturated


def test_regular_demand_series():
    series = [(m, leaf_count_mod(("a",), m, 0).num_states) for m in (2, 3, 5, 8)]
    print("\nT5 regular demand (modulus -> states needed):", series)
    assert [s for __, s in series] == [2, 3, 5, 8]


@pytest.mark.parametrize("rounds", (1, 2))
def test_ef_game_cost(benchmark, rounds):
    left = chain(2**rounds + 2)
    right = chain(2**rounds + 3)
    result = benchmark(
        lambda: duplicator_wins(left, right, rounds, signature=("child",))
    )
    assert result  # duplicator survives: parity is not rank-r definable


def test_ef_game_star_fanout(benchmark):
    result = benchmark(lambda: duplicator_wins(star(6), star(7), 2, signature=("child",)))
    assert isinstance(result, bool)
