"""Experiment C3 — translation blowup and the evaluation-cost gap.

Two series:

* **size**: |FO(MTC) output| as a function of |XPath input| for the T1
  translation — expected polynomial (roughly linear, with W relativisation
  multiplying by a constant guard factor);
* **cost gap**: answering the *same* query by direct XPath evaluation vs by
  model checking its translation — the practical moral of having a
  navigational language at all.
"""

import random

import pytest

from repro.logic import ModelChecker
from repro.translations import mtc_to_node_expr, xpath_to_mtc
from repro.trees import random_tree
from repro.xpath import Evaluator, parse_node
from repro.xpath.fragments import Dialect
from repro.xpath.random_exprs import ExprSampler

QUERY = parse_node("<descendant[a and <child[b]>]>")


@pytest.mark.parametrize("budget", (4, 8, 16, 32))
def test_translation_time_by_query_size(benchmark, budget):
    sampler = ExprSampler(rng=random.Random(budget), dialect=Dialect.REGULAR_W)
    expr = sampler.node(budget)
    formula = benchmark(lambda: xpath_to_mtc(expr))
    assert formula.size >= 1


def test_translation_size_growth():
    """Record the size series (printed into the benchmark log)."""
    rows = []
    for budget in (4, 8, 16, 32, 64):
        sampler = ExprSampler(rng=random.Random(1), dialect=Dialect.REGULAR_W)
        expr = sampler.node(budget)
        formula = xpath_to_mtc(expr)
        rows.append((expr.size, formula.size))
    print("\nC3 size series (|xpath| -> |fo(mtc)|):", rows)
    # Polynomial sanity: output within a generous constant factor cubed.
    for in_size, out_size in rows:
        assert out_size <= 40 * in_size**2


@pytest.mark.parametrize("size", (16, 32, 64))
def test_direct_xpath_evaluation(benchmark, size):
    tree = random_tree(size, rng=random.Random(size))
    result = benchmark(lambda: Evaluator(tree).nodes(QUERY))
    assert result is not None


@pytest.mark.parametrize("size", (16, 32, 64))
def test_model_checking_the_translation(benchmark, size):
    tree = random_tree(size, rng=random.Random(size))
    formula = xpath_to_mtc(QUERY)
    result = benchmark(lambda: ModelChecker(tree).node_set(formula, "x"))
    assert result is not None


def test_reverse_translation_time(benchmark):
    formula = xpath_to_mtc(parse_node("<child[a]> and not <descendant[b and leaf]>"))
    expr = benchmark(lambda: mtc_to_node_expr(formula, "x"))
    assert expr is not None


def test_fo2_translation(benchmark):
    """The Marx–de Rijke two-variable translation (via modal normal form)."""
    from repro.translations import xpath_to_fo2

    expr = parse_node("<child[<right[<parent[b]>]> and not <descendant[a]>]>")
    formula = benchmark(lambda: xpath_to_fo2(expr))
    from repro.translations import variables_used

    assert len(variables_used(formula)) <= 2


def test_exact_path_equivalence_via_marking(benchmark):
    """The marking reduction doubles the alphabet; still fast at this size."""
    from repro.decision import exact_path_equivalent
    from repro.xpath import parse_path

    left = parse_path("child/descendant_or_self")
    right = parse_path("descendant")
    result = benchmark(lambda: exact_path_equivalent(left, right))
    assert result is None
