"""Experiment C2 — TWA membership: config-graph vs bottom-up behaviors.

Both algorithms are near-linear in |T| for fixed |Q|; the behavior
algorithm pays a |Q|²-ish constant for its summaries but is the one that
generalizes to language-level reasoning (T4).  The series reports both on
the same automata/trees.
"""

import random

import pytest

from repro.automata import behavior_accepts, random_twa
from repro.trees import chain, random_tree

SIZES = (128, 512, 2048)


def make_automaton(states=4, seed=11):
    return random_twa(num_states=states, rng=random.Random(seed), density=0.7)


@pytest.mark.parametrize("size", SIZES)
def test_config_graph_membership(benchmark, size):
    automaton = make_automaton()
    tree = random_tree(size, rng=random.Random(size))
    result = benchmark(lambda: automaton.accepts(tree))
    assert result in (True, False)


@pytest.mark.parametrize("size", SIZES)
def test_behavior_membership(benchmark, size):
    automaton = make_automaton()
    tree = random_tree(size, rng=random.Random(size))
    result = benchmark(lambda: behavior_accepts(automaton, tree))
    assert result in (True, False)


@pytest.mark.parametrize("states", (2, 4, 8))
def test_behavior_state_scaling(benchmark, states):
    automaton = make_automaton(states=states, seed=5)
    tree = random_tree(512, rng=random.Random(0))
    result = benchmark(lambda: behavior_accepts(automaton, tree))
    assert result in (True, False)


def test_deep_chain_walk(benchmark):
    automaton = make_automaton(seed=3)
    tree = chain(4096, labels=("a", "b"))
    result = benchmark(lambda: automaton.accepts(tree))
    assert result in (True, False)
